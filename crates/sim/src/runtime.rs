//! Simulation-time state of jobs and job groups.

use std::collections::VecDeque;

use harmony_core::job::JobSpec;
use harmony_core::profile::JobProfile;
use harmony_mem::AlphaController;

use crate::fluid::Fluid;

/// Which subtask a job is executing or waiting to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// PULL: fetch model (network).
    Pull,
    /// COMP: compute update (CPU).
    Comp,
    /// PUSH: send update (network).
    Push,
}

impl Phase {
    /// The phase that follows within an iteration (`Push` wraps to
    /// `Pull` of the next iteration).
    pub fn next(self) -> Phase {
        match self {
            Phase::Pull => Phase::Comp,
            Phase::Comp => Phase::Push,
            Phase::Push => Phase::Pull,
        }
    }

    /// Whether the phase runs on the CPU resource.
    pub fn is_cpu(self) -> bool {
        self == Phase::Comp
    }
}

/// Scheduler-visible lifecycle of a simulated job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimJobState {
    /// Submitted but not yet placed anywhere.
    Waiting,
    /// Running profiling iterations in a profiling group.
    Profiling,
    /// Profile ready; waiting for a grouping decision.
    Profiled,
    /// Member of an active group.
    Running,
    /// Paused (checkpointed) awaiting re-placement.
    Paused,
    /// Converged.
    Finished,
    /// Killed by an out-of-memory condition.
    Failed,
}

/// Execution position of a job inside its group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecPhase {
    /// Not dispatched yet; may carry a not-before time (migration /
    /// input-load delay).
    Idle {
        /// Earliest time the first PULL may dispatch.
        ready_at: f64,
    },
    /// Sitting in the group's CPU or network queue.
    Queued(Phase),
    /// Active in the group's CPU or network resource.
    Running(Phase),
}

/// One simulated job.
#[derive(Debug, Clone)]
pub struct JobSim {
    /// Ground-truth specification.
    pub spec: JobSpec,
    /// Submission time.
    pub arrival: f64,
    /// Lifecycle state.
    pub state: SimJobState,
    /// Execution position within the current group.
    pub exec: ExecPhase,
    /// Iterations completed so far.
    pub iterations_done: u64,
    /// Iterations required for convergence.
    pub total_iterations: u64,
    /// Profiling iterations still to run before the profile is ready.
    pub profiling_left: u32,
    /// The profiled metrics (updated every iteration, §IV-B1).
    pub profile: JobProfile,
    /// Current disk ratio α.
    pub alpha: f64,
    /// Never let α fall below this (the group would stop fitting).
    pub alpha_floor: f64,
    /// Hill-climbing controller (only under `ReloadPolicy::Adaptive`).
    pub alpha_ctl: Option<AlphaController>,
    /// Whether the model is spilled too (§IV-C fallback).
    pub model_spilled: bool,
    /// Index of the group currently hosting the job.
    pub group: Option<usize>,
    /// When the job's last COMP subtask ended (preload-overlap anchor).
    pub last_comp_end: f64,
    /// When the current subtask was dispatched.
    pub phase_start: f64,
    /// Solo-equivalent duration of the current subtask (its work at
    /// full rate, free of co-location stretching) — what the profiler
    /// records, since Eqs. 1–4 are stated in solo subtask times.
    pub phase_solo: f64,
    /// When the current iteration's PULL was dispatched.
    pub iter_start: f64,
    /// Measured COMP seconds of the in-flight iteration.
    pub iter_tcpu: f64,
    /// Measured COMM seconds of the in-flight iteration.
    pub iter_tnet: f64,
    /// Completion time (set once finished or failed).
    pub finish: Option<f64>,
    /// Monotone sequence for fluid task keys.
    pub seq: u64,
    /// Set when the scheduler wants the job paused at the next
    /// iteration boundary.
    pub pause_requested: bool,
    /// Duration of the job's most recent completed iteration.
    pub last_iter_wall: f64,
    /// Iterations completed when the job last joined a group — the
    /// anchor for skipping the first in-group (load-warmup) iteration
    /// without scanning a per-group membership table.
    pub joined_iters: u64,
    /// Accumulated per-iteration COMP cost fed to the α controller.
    pub alpha_cost_acc: f64,
    /// Iterations accumulated in `alpha_cost_acc`.
    pub alpha_cost_n: u32,
    /// Whether the job was killed by an injected abort fault (as
    /// opposed to an OOM failure).
    pub aborted: bool,
    /// Set to the fault time when a crash orphaned this job; cleared
    /// (and turned into a recovery-latency sample) when the job is
    /// next placed.
    pub recover_mark: Option<f64>,
    /// Set to the drift time when live migration decided to move this
    /// job; cleared (and turned into a migration-latency sample, plus a
    /// checkpoint-reload charge) when the job is next placed.
    pub migrate_mark: Option<f64>,
    /// The `(group slot, created_at)` the job drifted out of. A
    /// migrating job refuses to bounce straight back into this exact
    /// group — its own measurements just condemned that placement — and
    /// escalates to a cluster-wide pass instead. `created_at`
    /// disambiguates a reused slot.
    pub migrate_origin: Option<(usize, f64)>,
    /// Scripted workload shift `(first shifted iteration, COMP-cost
    /// multiplier)` wired from [`crate::config::CompShift`]; `None` for
    /// an unshifted job.
    pub comp_shift: Option<(u64, f64)>,
    /// Sparse-wire density wired from [`crate::config::PushDensity`]:
    /// the job's PUSH subtask cost is this fraction of the dense wire
    /// (PULL stays dense — the server broadcasts the full model).
    /// `None` for a dense job.
    pub push_density: Option<f64>,
    /// Drift checks are suppressed until this iteration count. Set on a
    /// migration attach: the smoothed estimate is still converging on
    /// the regime that triggered the move, and re-flagging drift every
    /// iteration of that decay would migrate the job over and over for
    /// one workload change. When the window expires the basis is
    /// re-pinned on the settled estimate.
    pub drift_holdoff: u64,
    /// Times the admission layer has deferred this job
    /// (`Driver::run_open_loop`); drives the starvation guard that
    /// force-admits after `SimConfig::admission_max_deferrals`. Always
    /// zero in closed-loop runs.
    pub deferrals: u32,
    /// Set when the admission layer rejected the job outright (the job
    /// is terminal `Failed` without ever being scheduled). Always false
    /// in closed-loop runs.
    pub rejected: bool,
}

impl JobSim {
    /// Creates a job in the waiting state.
    pub fn new(index: usize, spec: JobSpec, arrival: f64) -> Self {
        let total_iterations = spec.total_iterations();
        let mut profile = JobProfile::new(harmony_core::job::JobId::new(index as u64));
        profile.set_memory_footprint(spec.input_bytes, spec.model_bytes);
        Self {
            spec,
            arrival,
            state: SimJobState::Waiting,
            exec: ExecPhase::Idle { ready_at: 0.0 },
            iterations_done: 0,
            total_iterations,
            profiling_left: 0,
            profile,
            alpha: 0.0,
            alpha_floor: 0.0,
            alpha_ctl: None,
            model_spilled: false,
            group: None,
            last_comp_end: 0.0,
            phase_start: 0.0,
            phase_solo: 0.0,
            iter_start: 0.0,
            iter_tcpu: 0.0,
            iter_tnet: 0.0,
            finish: None,
            seq: 0,
            pause_requested: false,
            last_iter_wall: 0.0,
            joined_iters: 0,
            alpha_cost_acc: 0.0,
            alpha_cost_n: 0,
            aborted: false,
            recover_mark: None,
            migrate_mark: None,
            migrate_origin: None,
            comp_shift: None,
            push_density: None,
            drift_holdoff: 0,
            deferrals: 0,
            rejected: false,
        }
    }

    /// Whether the job still needs cluster time.
    pub fn is_live(&self) -> bool {
        !matches!(self.state, SimJobState::Finished | SimJobState::Failed)
    }

    /// Remaining iterations until convergence.
    pub fn iterations_left(&self) -> u64 {
        self.total_iterations.saturating_sub(self.iterations_done)
    }

    /// Next task-key sequence number.
    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

/// One simulated job group (its machines run in barrier lockstep, so
/// one CPU/NET resource pair models every machine of the group).
#[derive(Debug, Clone)]
pub struct GroupSim {
    /// Stable index into the driver's group table.
    pub id: usize,
    /// Generation counter: stale wake events are discarded.
    pub gen: u64,
    /// Machines allocated (the group DoP `m_g`).
    pub machines: u32,
    /// Member job indices.
    pub jobs: Vec<usize>,
    /// CPU resource (capacity 1 per machine).
    pub cpu: Fluid,
    /// Network resource.
    pub net: Fluid,
    /// Jobs waiting for a CPU slot.
    pub cpu_queue: VecDeque<usize>,
    /// Jobs waiting for a network slot.
    pub net_queue: VecDeque<usize>,
    /// Max concurrent CPU subtasks (1 under Harmony's discipline,
    /// unbounded for the naive baseline).
    pub cpu_slots: usize,
    /// Max concurrent network subtasks (2 under Harmony: primary +
    /// secondary).
    pub net_slots: usize,
    /// Last time the fluid resources were advanced.
    pub last_advance: f64,
    /// Time the group was formed (prediction-accuracy accounting).
    pub created_at: f64,
    /// Accumulated busy resource-seconds (per machine).
    pub cpu_busy: f64,
    /// Accumulated busy network resource-seconds (per machine).
    pub net_busy: f64,
    /// Whether this group hosts profiling jobs.
    pub profiling_host: bool,
    /// Predicted group iteration time at formation (Harmony only).
    pub predicted_iteration: Option<f64>,
    /// Predicted `(cpu, net)` utilization at formation.
    pub predicted_util: Option<(f64, f64)>,
    /// When the slowest founding member finished loading (steady-state
    /// start for utilization measurement).
    pub steady_at: f64,
    /// Busy integrals snapshot taken at `steady_at` (cpu, net, time);
    /// `None` until the snapshot is taken.
    pub steady_mark: Option<(f64, f64, f64)>,
    /// Straggler-fault work multiplier applied to subtasks dispatched
    /// while `now < slow_until` (fault injection, §VI).
    pub slow_factor: f64,
    /// End of the transient slowdown window.
    pub slow_until: f64,
    /// The `(gen, time)` of this group's wake event currently sitting
    /// in the driver's heap, if any — set on push, cleared on the
    /// matching pop, so re-arming an identical wake can skip the
    /// duplicate enqueue entirely (fast event path).
    pub pending_wake: Option<(u64, f64)>,
    /// Cached Σ over members of `(1 − α)·input·expansion` plus the
    /// unspilled model bytes — the non-workspace part of the group's
    /// memory footprint. The driver refolds it on every membership or
    /// memory-plan change and nudges it incrementally on α hill-climb
    /// steps, so the GC probe on every COMP dispatch is O(1) instead
    /// of O(members).
    pub mem_base_bytes: f64,
    /// Cached Σ over members of `α·input` bytes (background disk-read
    /// pricing), maintained alongside `mem_base_bytes`.
    pub alpha_input_bytes: f64,
    /// Lazy min-heap of `(ready_at bits, job)` for members still
    /// loading input — coalesced mode's wake re-arm consults the top
    /// instead of scanning every member (the scan is O(members) and
    /// runs on every event). Entries go stale in place (job left,
    /// re-loaded, or its ready time passed) and are popped on sight.
    pub ready_heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
}

impl GroupSim {
    /// Creates an empty group shell; the driver populates jobs and
    /// queues.
    pub fn new(
        id: usize,
        machines: u32,
        cpu_slots: usize,
        net_slots: usize,
        interference_beta: f64,
        now: f64,
    ) -> Self {
        assert!(machines > 0, "a group needs at least one machine");
        assert!(cpu_slots > 0 && net_slots > 0, "slots must be non-zero");
        Self {
            id,
            gen: 0,
            machines,
            jobs: Vec::new(),
            cpu: Fluid::new(1.0, interference_beta),
            net: Fluid::new(1.0, interference_beta),
            cpu_queue: VecDeque::new(),
            net_queue: VecDeque::new(),
            cpu_slots,
            net_slots,
            last_advance: now,
            created_at: now,
            cpu_busy: 0.0,
            net_busy: 0.0,
            profiling_host: false,
            predicted_iteration: None,
            predicted_util: None,
            steady_at: now,
            steady_mark: None,
            slow_factor: 1.0,
            slow_until: 0.0,
            pending_wake: None,
            mem_base_bytes: 0.0,
            alpha_input_bytes: 0.0,
            ready_heap: std::collections::BinaryHeap::new(),
        }
    }

    /// Work multiplier for a subtask dispatched at `now` (> 1 only
    /// inside an active slowdown-fault window).
    pub fn straggle_factor(&self, now: f64) -> f64 {
        if now < self.slow_until {
            self.slow_factor.max(1.0)
        } else {
            1.0
        }
    }

    /// Earliest future event inside this group (task completion), as
    /// seconds from now. `None` when fully idle.
    pub fn time_to_next_event(&self) -> Option<f64> {
        match (
            self.cpu.time_to_next_completion(),
            self.net.time_to_next_completion(),
        ) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// Removes a job from the group's queues (used when pausing).
    pub fn unqueue(&mut self, job: usize) {
        self.cpu_queue.retain(|&j| j != job);
        self.net_queue.retain(|&j| j != job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::job::AppKind;

    fn spec() -> JobSpec {
        JobSpec {
            name: "t".into(),
            app: AppKind::Mlr,
            dataset: "d".into(),
            input_bytes: 1 << 30,
            model_bytes: 1 << 28,
            comp_cost: 100.0,
            net_cost: 10.0,
            sync: Default::default(),
            pull_fraction: 0.5,
            iters_per_epoch: 5,
            target_epochs: 4,
        }
    }

    #[test]
    fn phase_cycle_and_resource() {
        assert_eq!(Phase::Pull.next(), Phase::Comp);
        assert_eq!(Phase::Comp.next(), Phase::Push);
        assert_eq!(Phase::Push.next(), Phase::Pull);
        assert!(Phase::Comp.is_cpu());
        assert!(!Phase::Pull.is_cpu());
    }

    #[test]
    fn job_initial_state() {
        let j = JobSim::new(0, spec(), 5.0);
        assert_eq!(j.state, SimJobState::Waiting);
        assert_eq!(j.total_iterations, 20);
        assert_eq!(j.iterations_left(), 20);
        assert!(j.is_live());
        assert_eq!(j.arrival, 5.0);
    }

    #[test]
    fn job_seq_is_monotone() {
        let mut j = JobSim::new(0, spec(), 0.0);
        let a = j.next_seq();
        let b = j.next_seq();
        assert!(b > a);
    }

    #[test]
    fn finished_job_is_not_live() {
        let mut j = JobSim::new(0, spec(), 0.0);
        j.state = SimJobState::Finished;
        assert!(!j.is_live());
        j.state = SimJobState::Failed;
        assert!(!j.is_live());
    }

    #[test]
    fn group_next_event_combines_resources() {
        let mut g = GroupSim::new(0, 4, 1, 2, 0.0, 0.0);
        assert_eq!(g.time_to_next_event(), None);
        g.cpu
            .add(crate::fluid::TaskKey { job: 0, seq: 1 }, 1.0, 5.0);
        g.net
            .add(crate::fluid::TaskKey { job: 1, seq: 1 }, 0.5, 1.0);
        assert_eq!(g.time_to_next_event(), Some(2.0));
    }

    #[test]
    fn unqueue_removes_from_both_queues() {
        let mut g = GroupSim::new(0, 1, 1, 2, 0.0, 0.0);
        g.cpu_queue.push_back(3);
        g.net_queue.push_back(3);
        g.net_queue.push_back(4);
        g.unqueue(3);
        assert!(g.cpu_queue.is_empty());
        assert_eq!(g.net_queue, VecDeque::from(vec![4]));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn group_rejects_zero_machines() {
        let _ = GroupSim::new(0, 0, 1, 2, 0.0, 0.0);
    }

    #[test]
    fn straggle_factor_applies_only_inside_window() {
        let mut g = GroupSim::new(0, 2, 1, 2, 0.0, 0.0);
        assert_eq!(g.straggle_factor(10.0), 1.0);
        g.slow_factor = 3.0;
        g.slow_until = 50.0;
        assert_eq!(g.straggle_factor(49.9), 3.0);
        assert_eq!(g.straggle_factor(50.0), 1.0);
    }
}
