//! Sharded event lanes: a two-level priority queue for the driver's
//! event heap.
//!
//! The single `BinaryHeap` the driver started with funnels every wake
//! of every group through one O(log total-events) structure, so wake
//! churn in one busy group pays for the backlog of all the others. The
//! [`LaneQueue`] shards events into per-lane heaps (the driver maps
//! one lane per group, plus a lane for global events) and keeps a
//! top-level heap of *lane-head snapshots*, so a push or pop touches
//! only its own lane — O(log lane-events) — plus an O(log lanes)
//! top-heap update.
//!
//! **Order equivalence.** Event keys embed a strictly increasing
//! sequence number, so the key order is a strict total order with no
//! ties. The top heap always holds at least one snapshot of every
//! lane's current head (a snapshot is pushed whenever a lane's head
//! changes — by a push that becomes the new head, or by popping the
//! previous head), and stale snapshots — those no longer equal to
//! their lane's head — are skipped on pop. The first *valid* snapshot
//! popped is therefore the minimum over all lane heads, i.e. exactly
//! the event a single global heap would pop. `tests` below assert the
//! pop sequence matches a reference heap under randomized interleaved
//! push/pop traffic.
//!
//! The queue is flag-gated ([`SimConfig::incremental_resched`]
//! (crate::SimConfig)): with `sharded` off it degenerates to the
//! original single heap, serving as the reference arm of the
//! equivalence gate — though by the argument above the arms agree on
//! every pop, not just on the final report.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A two-level sharded priority queue: min-order over `K`, which must
/// be globally unique (the driver's `(Time, seq, kind)` tuples are —
/// `seq` never repeats).
#[derive(Debug)]
pub(crate) struct LaneQueue<K: Ord + Copy> {
    /// Single-heap reference arm (used when `sharded` is off).
    heap: BinaryHeap<Reverse<K>>,
    /// Per-lane heaps (sharded arm).
    lanes: Vec<BinaryHeap<Reverse<K>>>,
    /// Lane-head snapshots: `(head_key, lane)`. May hold stale
    /// entries; validity is checked against the lane's current head.
    top: BinaryHeap<Reverse<(K, u32)>>,
    /// Total queued events (both arms).
    len: usize,
    /// Route through the lanes instead of the single heap.
    sharded: bool,
}

impl<K: Ord + Copy> LaneQueue<K> {
    /// An empty queue; `sharded` picks the arm for its whole lifetime.
    pub(crate) fn new(sharded: bool) -> Self {
        Self {
            heap: BinaryHeap::new(),
            lanes: Vec::new(),
            top: BinaryHeap::new(),
            len: 0,
            sharded,
        }
    }

    /// Queues `key` on `lane` (lanes are created on demand).
    pub(crate) fn push(&mut self, lane: usize, key: K) {
        self.len += 1;
        if !self.sharded {
            self.heap.push(Reverse(key));
            return;
        }
        if lane >= self.lanes.len() {
            self.lanes.resize_with(lane + 1, BinaryHeap::new);
        }
        self.lanes[lane].push(Reverse(key));
        // Snapshot the head only when this push changed it; the old
        // head's snapshot goes stale and is skipped on pop.
        if self.lanes[lane].peek() == Some(&Reverse(key)) {
            self.top.push(Reverse((key, lane as u32)));
        }
    }

    /// Pops the globally smallest queued key.
    pub(crate) fn pop(&mut self) -> Option<K> {
        if !self.sharded {
            let Reverse(key) = self.heap.pop()?;
            self.len -= 1;
            return Some(key);
        }
        while let Some(Reverse((key, lane))) = self.top.pop() {
            let lane = lane as usize;
            if self.lanes[lane].peek() != Some(&Reverse(key)) {
                continue; // stale snapshot
            }
            self.lanes[lane].pop();
            if let Some(&Reverse(head)) = self.lanes[lane].peek() {
                self.top.push(Reverse((head, lane as u32)));
            }
            self.len -= 1;
            return Some(key);
        }
        debug_assert_eq!(self.len, 0, "lanes hold events but no head snapshot");
        None
    }

    /// Whether any event is queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic splitmix64 stream for randomized traffic.
    fn mix(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    #[test]
    fn sharded_pop_order_matches_single_heap() {
        for seed in 0..4u64 {
            let mut rng = seed;
            let mut sharded = LaneQueue::new(true);
            let mut single = LaneQueue::new(false);
            let mut seq = 0u64;
            let mut drained: Vec<(u64, u64)> = Vec::new();
            for _ in 0..2000 {
                let r = mix(&mut rng);
                if !r.is_multiple_of(3) || sharded.is_empty() {
                    // Push to a random lane with a random (coarse) time
                    // and a unique sequence number.
                    seq += 1;
                    let key = (r >> 8 & 0xF, seq);
                    let lane = (r % 7) as usize;
                    sharded.push(lane, key);
                    single.push(lane, key);
                } else {
                    let a = sharded.pop();
                    let b = single.pop();
                    assert_eq!(a, b);
                    drained.push(a.unwrap());
                }
            }
            while let Some(a) = sharded.pop() {
                assert_eq!(Some(a), single.pop());
                drained.push(a);
            }
            assert!(single.is_empty());
            // Each drain segment between pushes is locally sorted; the
            // cross-check above is the real assertion, this guards the
            // reference arm itself.
            assert_eq!(drained.len(), seq as usize);
        }
    }

    #[test]
    fn interleaved_same_time_events_pop_in_seq_order() {
        let mut q = LaneQueue::new(true);
        for (lane, seq) in [(2usize, 1u64), (0, 2), (1, 3), (2, 4), (0, 5)] {
            q.push(lane, (10u64, seq));
        }
        let mut seqs = Vec::new();
        while let Some((_, s)) = q.pop() {
            seqs.push(s);
        }
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }
}
