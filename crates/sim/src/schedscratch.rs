//! Persistent scratch for the simulator's reschedule path.
//!
//! Every `full_reschedule` used to rebuild a `ProfileStore` (a
//! `BTreeMap` clone of every warm profile), per-class ordering
//! vectors, a fresh profile vector and the core scheduler's internal
//! buffers — all heap traffic repeated on each trigger. This scratch
//! keeps those buffers alive across invocations so the steady-state
//! reschedule allocates nothing once warmed up; the ordering and
//! filtering logic itself is unchanged, and the profile sequence fed
//! to Algorithm 1 is byte-identical to the store-backed path.

use harmony_core::profile::JobProfile;
use harmony_core::scratch::{ProfileCache, ScheduleScratch};

/// Reused buffers for [`crate::driver::Driver`]'s full reschedule.
pub(crate) struct SimSchedScratch {
    /// Job indices of the state class being ordered (cleared per class).
    pub class: Vec<usize>,
    /// Profiles of the ordered schedulable jobs (J_profiled ∪ J_paused
    /// ∪ J_running), in decision order; flat copies, capacity reused.
    pub profiles: Vec<JobProfile>,
    /// Per-profile derived arrays reused by the core scheduler.
    pub cache: ProfileCache,
    /// Candidate-scan scratch reused by the core scheduler.
    pub scratch: ScheduleScratch,
    /// Profiles fed to the targeted release pass
    /// ([`harmony_core::schedule::Scheduler::schedule_release`]); kept
    /// separate from `profiles` so a release decision never perturbs
    /// the full pass's dirty-set cache.
    pub release_profiles: Vec<JobProfile>,
    /// Dirty-set cache dedicated to the release pass.
    pub release_cache: ProfileCache,
    /// Candidate-scan scratch dedicated to the release pass.
    pub release_scratch: ScheduleScratch,
    /// Profiles fed to admission pricing
    /// ([`harmony_core::Scheduler::price_candidate`]); like the
    /// release buffers, kept separate so pricing an arrival never
    /// perturbs the full pass's dirty-set cache.
    pub admission_profiles: Vec<JobProfile>,
    /// Dirty-set cache dedicated to admission pricing.
    pub admission_cache: ProfileCache,
    /// Candidate-scan scratch dedicated to admission pricing.
    pub admission_scratch: ScheduleScratch,
}

impl SimSchedScratch {
    pub fn new() -> Self {
        Self {
            class: Vec::new(),
            profiles: Vec::new(),
            cache: ProfileCache::empty(),
            scratch: ScheduleScratch::new(),
            release_profiles: Vec::new(),
            release_cache: ProfileCache::empty(),
            release_scratch: ScheduleScratch::new(),
            admission_profiles: Vec::new(),
            admission_cache: ProfileCache::empty(),
            admission_scratch: ScheduleScratch::new(),
        }
    }
}

impl Default for SimSchedScratch {
    fn default() -> Self {
        Self::new()
    }
}
