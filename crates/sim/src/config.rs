//! Simulation configuration.

use harmony_core::cluster::MachineSpec;
use harmony_core::schedule::SchedulerConfig;
use harmony_mem::GcModel;

use crate::fault::FaultPlan;

/// Which scheduling policy drives the run (§V-A baselines + Harmony).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// The full Harmony scheduler: profiling, Algorithm 1, dynamic
    /// regrouping.
    Harmony,
    /// Harmony's machinery but with the exhaustive-search oracle making
    /// the grouping decision (only tractable for small job counts;
    /// §V-F).
    Oracle,
    /// Dedicated resources per job at its CPU-utilization-maximizing
    /// "knee" DoP (Optimus/SLAQ-like).
    Isolated,
    /// Uncoordinated sharing: jobs packed `jobs_per_group` to a pool,
    /// subtasks dispatched with no discipline (Gandiva-like). The seed
    /// picks one of the many possible placements.
    Naive {
        /// Jobs packed per shared machine pool.
        jobs_per_group: usize,
        /// Placement shuffle seed (the evaluation samples several and
        /// reports best/worst).
        seed: u64,
    },
}

/// How input-data spill/reload is managed (§IV-C, §V-G).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReloadPolicy {
    /// Keep everything in memory (α = 0); OOM if it does not fit.
    None,
    /// One fixed α for every job (the §V-G baseline).
    Fixed(f64),
    /// Static per-job α chosen at group formation so the group fits
    /// under the target fill (what a production default would do).
    StaticFit,
    /// Harmony: per-job hill-climbing α controllers (dynamic reloading).
    Adaptive,
}

/// A scripted mid-run workload shift: from (0-based) iteration
/// `at_iteration` onward, job `job`'s true per-iteration COMP cost is
/// multiplied by `factor`. The scheduler is never told — it can only
/// find out through closed-loop measurements (`profile_feedback`), which
/// makes this the simulator analogue of the COMP-collapse script the PS
/// tests drive through [`harmony_ps` virtual clocks].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompShift {
    /// Index of the shifted job in the workload's spec order.
    pub job: usize,
    /// First iteration (0-based, counting every completed iteration
    /// including profiling) that runs at the shifted cost.
    pub at_iteration: u64,
    /// Multiplier applied to the spec's `comp_cost`; `1/16` is the
    /// paper-style 16× collapse, values above 1 model a degradation.
    pub factor: f64,
}

/// A sparse-wire declaration: job `job` ships coordinate-sparse PUSH
/// deltas whose bytes-on-the-wire are `density` × the dense payload
/// (see `harmony_ps::PushVolume`). The simulator scales the job's PUSH
/// subtask cost accordingly — PULL stays dense, because the server
/// broadcasts the full model either way. As with [`CompShift`], the
/// scheduler is never told directly; with `charge_sparse_comm` on it
/// can learn the density through closed-loop measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushDensity {
    /// Index of the sparse job in the workload's spec order.
    pub job: usize,
    /// Wire bytes relative to a dense push, in `(0, 1]`.
    pub density: f64,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of machines in the cluster.
    pub machines: u32,
    /// Per-machine hardware (defaults to m4.2xlarge).
    pub machine: MachineSpec,
    /// Scheduling policy under test.
    pub scheduler: SchedulerKind,
    /// Harmony scheduler tunables (ignored by baselines).
    pub scheduler_config: SchedulerConfig,
    /// Spill/reload policy.
    pub reload: ReloadPolicy,
    /// Iterations a new job runs in a profiling group before its profile
    /// is declared ready (§IV-B1).
    pub profile_iterations: u32,
    /// Machines granted to a freshly created profiling group.
    pub profiling_group_machines: u32,
    /// Max jobs co-profiled in one profiling group.
    pub profiling_group_jobs: usize,
    /// Coefficient of variation of per-subtask straggler noise.
    pub straggler_cv: f64,
    /// RNG seed for all stochastic elements.
    pub seed: u64,
    /// NIC demand of a single COMM subtask. At the default 1.0 a COMM
    /// subtask saturates the wire for its nominal duration, so two
    /// concurrent subtasks (primary + secondary, §IV-A) pipeline without
    /// changing aggregate timing — exactly the serialized `Σ Tnet` bound
    /// of Eq. 1. Values < 1 model request/response idle gaps that the
    /// secondary subtask can harvest (an ablation knob).
    pub net_demand: f64,
    /// Per-extra-task interference slowdown for uncoordinated sharing.
    pub interference_beta: f64,
    /// GC pressure model.
    pub gc: GcModel,
    /// JVM-style expansion factor on resident input bytes (object
    /// headers, boxing, intermediate copies).
    pub memory_expansion: f64,
    /// Working-set fraction of a job's per-machine input charged while
    /// its COMP subtask runs.
    pub workspace_fraction: f64,
    /// Memory-fill target for `ReloadPolicy::StaticFit`.
    pub static_fill_target: f64,
    /// Fraction of the pipeline gap usable as background-preload overlap
    /// credit (1.0 under Harmony's coordinated reload; lower for
    /// uncoordinated baselines).
    pub reload_overlap: f64,
    /// Deserialization throughput for reloaded blocks (bytes/s of CPU
    /// work).
    pub deser_bytes_per_sec: f64,
    /// Relative error injected into profiles before every scheduling
    /// decision (Figure 13a); 0 disables.
    pub error_injection: f64,
    /// Utilization sampling interval in seconds (the paper uses 1 min).
    pub utilization_sample_secs: f64,
    /// Trigger a full reschedule when at least this many profiled/paused
    /// jobs are waiting (engineering guardrail around §IV-B4's
    /// minimal-movement rules).
    pub waiting_reschedule_threshold: usize,
    /// Force this DoP for isolated jobs and naive pools instead of the
    /// knee heuristic — used by the motivation experiments (Figures 2-4
    /// fix the DoP at 16).
    pub fixed_dop: Option<u32>,
    /// Override the per-group executor discipline `(cpu_slots,
    /// net_slots)` regardless of scheduler kind — the ablation study
    /// uses this to run "subtasks only" (Harmony's discipline under
    /// naive grouping).
    pub discipline_override: Option<(usize, usize)>,
    /// CPU-boundedness factor of the isolated baseline's knee DoP
    /// (`Tcpu(m) >= factor * Tnet`); larger means lower DoP and higher
    /// CPU utilization per job (§V-A).
    pub isolated_knee_factor: f64,
    /// Record one [`crate::spans::SubtaskSpan`] per executed subtask
    /// (for Gantt / Chrome-trace export). Off by default: long runs
    /// produce hundreds of thousands of spans.
    pub record_spans: bool,
    /// Mean time between machine failures across the whole cluster
    /// (§VI "fault tolerance"): each failure hits one random group,
    /// whose jobs roll back to their last per-epoch checkpoint and pay
    /// a restart (input reload) delay. `None` disables failures.
    pub failure_mtbf_secs: Option<f64>,
    /// Scheduled fault injection (§VI): machine crashes, transient
    /// slowdowns and job aborts at fixed simulated times, with
    /// deterministic victim selection. `None` disables the subsystem.
    /// Unlike `failure_mtbf_secs` (which restarts a whole group in
    /// place), plan-driven crashes permanently remove machines and
    /// exercise the regrouper's recovery paths.
    pub fault_plan: Option<FaultPlan>,
    /// Route hot events through the allocation-free fast path: wake
    /// dedup via per-group pending markers, the incremental
    /// active-scheduled counter, and reschedules that reuse a
    /// persistent scratch instead of rebuilding a `ProfileStore` and
    /// fresh buffers per invocation. The fast path is equivalence-gated:
    /// `RunReport::canonical_bytes` is bit-identical with the flag off
    /// (asserted by `tests/sim_equivalence.rs`), so disabling it only
    /// serves as the reference arm of that comparison.
    pub fast_event_path: bool,
    /// Incremental rescheduling: kill the per-event O(jobs × machines)
    /// term with three provably outcome-preserving cuts. (1) The
    /// regrouper freezes per-group Eq. 3 terms once per decision and
    /// refolds Eq. 4 over them, so a targeted pass re-derives only the
    /// touched group — see
    /// [`harmony_core::regroup::Regrouper::with_incremental`]. (2) When
    /// the incumbent utilization already saturates the score ceiling,
    /// the regrouper's escalation ladder (one full Algorithm 1 pass per
    /// rung) is skipped outright: no candidate can clear the
    /// improvement threshold. (3) Full passes rebuild the profile
    /// cache through the dirty-set path
    /// ([`harmony_core::scratch::ProfileCache::rebuild_dirty`]), and
    /// the event queue is sharded into per-group lanes
    /// ([`crate::events`]). Equivalence-gated like `fast_event_path`:
    /// `RunReport::canonical_bytes` is bit-identical with the flag off
    /// (asserted by `tests/sim_equivalence.rs`).
    pub incremental_resched: bool,
    /// Closed-loop online profiling (§IV-B4): pin every running job's
    /// profile to the estimate its current schedule was computed with,
    /// and trigger a reschedule when the smoothed measurement drifts
    /// from that basis by at least
    /// `scheduler_config.improvement_threshold` (the paper's 5%). Off
    /// by default; with the flag off the event path never consults the
    /// drift machinery, so decisions are byte-identical to a build
    /// without it (`tests/profile_feedback.rs`).
    pub profile_feedback: bool,
    /// Live job migration via checkpoint/resume (§IV-B4). When a
    /// running job's profile drifts (`profile_feedback` must be on for
    /// drift to fire), instead of triggering a cluster-wide reschedule
    /// the job alone is paused at its next iteration boundary, its
    /// model checkpointed, and it is reattached in the group a targeted
    /// scheduling pass picks — paying a checkpoint-transfer delay on
    /// top of the input reload. Off by default; with the flag off the
    /// drift path full-reschedules exactly as before, so
    /// `RunReport::canonical_bytes` is byte-identical to a build
    /// without the feature (`tests/sim_equivalence.rs`).
    pub live_migration: bool,
    /// Iterations a freshly migrated job runs before its drift trigger
    /// re-arms. The smoothed profile estimate needs several samples to
    /// converge on the regime that caused the move (at the EWMA's
    /// α = 0.3, a 16× shift takes ~8 samples to settle within the 5%
    /// band); checking drift during that decay re-flags the same shift
    /// every iteration and migrates the job in a loop. When the window
    /// expires the basis is re-pinned on the settled estimate. Only
    /// consulted when `live_migration` is on.
    pub migration_settle_iters: u32,
    /// Scripted mid-run workload shifts (see [`CompShift`]). Empty by
    /// default; with no shifts the COMP cost path is untouched, so
    /// decisions are byte-identical to a build without the knob.
    pub comp_shifts: Vec<CompShift>,
    /// Per-job sparse-wire declarations (see [`PushDensity`]). Empty by
    /// default; with no entries the PUSH cost path is untouched, so
    /// decisions are byte-identical to a build without the knob.
    pub push_densities: Vec<PushDensity>,
    /// Hard cap on simulated seconds (guards against runaway configs).
    pub max_sim_seconds: f64,
    /// Coalesced reschedule passes: break the finish-mandated
    /// full-pass floor. With the flag off every job finish that
    /// crosses the backlog threshold (or dissolves its group with work
    /// waiting) fires its own full Algorithm 1 pass, so passes grow
    /// with n and the event path inherits a superlinear wall-clock
    /// floor. With the flag on, finish-triggered passes *coalesce*:
    /// the first finish opens a window of [`Self::coalesce_window`]
    /// virtual seconds; further finishes inside it only accumulate;
    /// the window flushes into ONE full pass at expiry (or at
    /// [`Self::coalesce_max_batch`] finishes). Any other full-pass
    /// trigger — drift, fault recovery, unstall, the profiled-backlog
    /// threshold — closes the window for free, because its own full
    /// pass subsumes the deferred one. While a window is open, a
    /// finish that dissolves its group hands the freed machines to the
    /// best waiting jobs through a cheap targeted release pass
    /// ([`harmony_core::schedule::Scheduler::schedule_release`]), so
    /// freed capacity never idles behind the deferral.
    ///
    /// Unlike `fast_event_path`/`incremental_resched` this mode is
    /// equivalence-*relaxed*, not equivalence-gated: decisions
    /// legitimately differ from the exact arm. The acceptance story is
    /// quantified instead — `tests/coalesce_acceptance.rs` holds mean
    /// JCT and final utilization within 1% of the exact arm across the
    /// equivalence matrix, and `RunReport::coalesce_staleness` proves
    /// no deferred decision ever waits longer than the window. Off by
    /// default; with the flag off the event path never consults the
    /// window machinery, so existing equivalence suites stay
    /// byte-identical.
    pub coalesced_passes: bool,
    /// Virtual seconds a coalescing window stays open before flushing
    /// (the staleness bound on any deferred finish pass). Only
    /// consulted when `coalesced_passes` is on.
    pub coalesce_window: f64,
    /// Finish count that flushes a window early, bounding how much
    /// cluster state one deferred pass can reshuffle. Only consulted
    /// when `coalesced_passes` is on.
    pub coalesce_max_batch: usize,
    /// Seconds between re-offers of a deferred arrival to the
    /// admission policy (`Driver::run_open_loop`). Only consulted when
    /// an [`crate::admission::AdmissionPolicy`] actually defers.
    pub admission_reoffer_secs: f64,
    /// Deferral budget per job: after this many deferrals the driver
    /// force-admits the job, bounding queue wait by
    /// `admission_max_deferrals × admission_reoffer_secs` — the
    /// starvation guard `tests/open_loop_acceptance.rs` asserts.
    pub admission_max_deferrals: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            machines: 100,
            machine: MachineSpec::m4_2xlarge(),
            scheduler: SchedulerKind::Harmony,
            scheduler_config: SchedulerConfig::default(),
            reload: ReloadPolicy::Adaptive,
            profile_iterations: 3,
            profiling_group_machines: 8,
            profiling_group_jobs: 8,
            straggler_cv: 0.03,
            seed: 0,
            net_demand: 1.0,
            interference_beta: 0.08,
            gc: GcModel::default(),
            memory_expansion: 2.5,
            workspace_fraction: 0.08,
            static_fill_target: 0.8,
            reload_overlap: 1.0,
            deser_bytes_per_sec: 400.0e6,
            error_injection: 0.0,
            utilization_sample_secs: 60.0,
            waiting_reschedule_threshold: 8,
            fixed_dop: None,
            discipline_override: None,
            isolated_knee_factor: 1.0,
            record_spans: false,
            failure_mtbf_secs: None,
            fault_plan: None,
            fast_event_path: true,
            incremental_resched: true,
            profile_feedback: false,
            live_migration: false,
            migration_settle_iters: 8,
            comp_shifts: Vec::new(),
            push_densities: Vec::new(),
            max_sim_seconds: 60.0 * 86_400.0,
            coalesced_passes: false,
            coalesce_window: 30.0,
            coalesce_max_batch: 32,
            admission_reoffer_secs: 30.0,
            admission_max_deferrals: 16,
        }
    }
}

impl SimConfig {
    /// Convenience: a config running `scheduler` with everything else
    /// default.
    pub fn with_scheduler(scheduler: SchedulerKind) -> Self {
        Self {
            scheduler,
            ..Self::default()
        }
    }

    /// Validates cross-field consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("cluster needs at least one machine".into());
        }
        if !(0.0..=1.0).contains(&self.net_demand) || self.net_demand == 0.0 {
            return Err(format!(
                "net_demand must be in (0, 1], got {}",
                self.net_demand
            ));
        }
        if self.profile_iterations == 0 {
            return Err("profiling needs at least one iteration".into());
        }
        if let ReloadPolicy::Fixed(a) = self.reload {
            if !(0.0..=1.0).contains(&a) {
                return Err(format!("fixed alpha must be in [0, 1], got {a}"));
            }
        }
        if let SchedulerKind::Naive { jobs_per_group, .. } = self.scheduler {
            if jobs_per_group == 0 {
                return Err("naive packing needs at least one job per group".into());
            }
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate()?;
        }
        for s in &self.comp_shifts {
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return Err(format!(
                    "comp shift factor must be positive, got {}",
                    s.factor
                ));
            }
        }
        for d in &self.push_densities {
            if !d.density.is_finite() || d.density <= 0.0 || d.density > 1.0 {
                return Err(format!("push density must be in (0, 1], got {}", d.density));
            }
        }
        if self.coalesced_passes {
            if !self.coalesce_window.is_finite() || self.coalesce_window <= 0.0 {
                return Err(format!(
                    "coalesce window must be a positive number of seconds, got {}",
                    self.coalesce_window
                ));
            }
            if self.coalesce_max_batch == 0 {
                return Err("coalesce batch cap needs at least one finish".into());
            }
        }
        if !self.admission_reoffer_secs.is_finite() || self.admission_reoffer_secs <= 0.0 {
            return Err(format!(
                "admission re-offer interval must be a positive number of seconds, got {}",
                self.admission_reoffer_secs
            ));
        }
        if self.admission_max_deferrals == 0 {
            return Err("admission deferral budget needs at least one deferral".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_fields() {
        let c = SimConfig {
            machines: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            net_demand: 0.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            reload: ReloadPolicy::Fixed(1.5),
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig::with_scheduler(SchedulerKind::Naive {
            jobs_per_group: 0,
            seed: 0,
        });
        assert!(c.validate().is_err());

        let c = SimConfig {
            fault_plan: Some(crate::fault::FaultPlan::new(
                0,
                vec![crate::fault::FaultEvent {
                    at: -5.0,
                    kind: crate::fault::FaultKind::MachineCrash,
                }],
            )),
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            comp_shifts: vec![CompShift {
                job: 0,
                at_iteration: 4,
                factor: 0.0,
            }],
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            push_densities: vec![PushDensity {
                job: 0,
                density: 1.5,
            }],
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            coalesced_passes: true,
            coalesce_window: 0.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            coalesced_passes: true,
            coalesce_max_batch: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        // The knobs are dormant while the mode is off.
        let c = SimConfig {
            coalesced_passes: false,
            coalesce_window: -1.0,
            coalesce_max_batch: 0,
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Ok(()));

        // Admission knobs have always-valid defaults and are checked
        // unconditionally (closed-loop runs never consult them, but a
        // nonsensical value is still a config bug).
        let c = SimConfig {
            admission_reoffer_secs: 0.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            admission_reoffer_secs: f64::INFINITY,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            admission_max_deferrals: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_scheduler_sets_kind() {
        let c = SimConfig::with_scheduler(SchedulerKind::Isolated);
        assert_eq!(c.scheduler, SchedulerKind::Isolated);
        assert_eq!(c.machines, 100);
    }
}
