//! Fluid (generalized-processor-sharing) resource model.
//!
//! A resource has capacity 1.0 (one machine's CPU or NIC — all machines
//! of a group behave identically, see the crate docs). Each active task
//! has a *demand* `d ∈ (0, 1]` (a COMP subtask wants the whole CPU,
//! `d = 1`; a COMM subtask wants `d ≈ 0.7` of the NIC because of
//! request/response gaps) and *remaining work* measured in
//! demand-seconds: a task with work `w` running alone finishes in
//! `w / d` seconds.
//!
//! When the sum of demands exceeds capacity, tasks share proportionally;
//! an additional interference factor `1 / (1 + β (n − 1))` models the
//! super-linear slowdown of uncoordinated co-location (cache and
//! scheduler thrash) that Figure 4 exhibits.

/// Identity of a task inside a fluid resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskKey {
    /// Driver-level job index.
    pub job: usize,
    /// Monotone per-job sequence number (iteration × kind).
    pub seq: u64,
}

#[derive(Debug, Clone)]
struct Task {
    demand: f64,
    /// Virtual completion time: `v_start + work / demand`. Fixed at
    /// admission — membership changes alter how fast *virtual* time
    /// advances, never where a task finishes on the virtual axis.
    v_done: f64,
    /// Internal admission stamp; heap entries carry it so a cancelled
    /// (or re-added) task's stale entries are recognisable.
    fseq: u64,
}

/// One machine-equivalent shared resource.
///
/// # Virtual-time formulation
///
/// Every task progresses at `demand × share × interference`, and the
/// `share × interference` multiplier is *common to all tasks*. Define
/// a virtual clock `v` with `dv = share · interference · dt`: a task
/// admitted at `v₀` with `w` demand-seconds of work then completes at
/// the fixed virtual instant `v₀ + w / demand`, no matter how the
/// membership (and hence the multiplier) changes in between. That
/// turns the per-wake work from O(tasks) — the old representation
/// decremented every task's `remaining` on every advance — into
/// O(log tasks): a min-heap on virtual completion time yields the next
/// finisher, and membership aggregates (`total_demand`, task count)
/// update in O(1). On bench-scale runs the advance loop is the
/// simulator's hottest path, and its cost used to scale with group
/// size; it no longer does.
///
/// Cancelled tasks leave stale heap entries that are purged lazily;
/// `purge_stale_top` keeps the heap *top* live so `&self` peeks
/// (`time_to_next_completion`) stay O(1).
#[derive(Debug, Clone)]
pub struct Fluid {
    capacity: f64,
    beta: f64,
    /// Live tasks keyed `(job, seq)`. A `BTreeMap` so `tasks_of` /
    /// `cancel_all_of` iterate in a deterministic order (runs must be
    /// reproducible bit for bit).
    tasks: std::collections::BTreeMap<(usize, u64), Task>,
    /// Min-heap of `(v_done bits, fseq, job, seq)`. Non-negative
    /// floats order identically to their IEEE bits, and `v` never goes
    /// negative.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, usize, u64)>>,
    /// The virtual clock: `∫ share · interference dt`. Reset to zero
    /// whenever the resource drains so precision never degrades over a
    /// long run.
    v: f64,
    next_fseq: u64,
    total_demand: f64,
    share: f64,
    interference: f64,
    usage_sum: f64,
}

impl Fluid {
    /// Creates a resource of the given capacity and interference
    /// coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `beta` is negative.
    pub fn new(capacity: f64, beta: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(beta >= 0.0, "interference beta must be non-negative");
        Self {
            capacity,
            beta,
            tasks: std::collections::BTreeMap::new(),
            heap: std::collections::BinaryHeap::new(),
            v: 0.0,
            next_fseq: 0,
            total_demand: 0.0,
            share: 1.0,
            interference: 1.0,
            usage_sum: 0.0,
        }
    }

    /// Number of active tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task is active.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task with `demand` and `work` demand-seconds.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is outside `(0, capacity]` or `work` is
    /// negative.
    pub fn add(&mut self, key: TaskKey, demand: f64, work: f64) {
        assert!(
            demand > 0.0 && demand <= self.capacity,
            "demand {demand} outside (0, {}]",
            self.capacity
        );
        assert!(work >= 0.0, "work must be non-negative");
        self.next_fseq += 1;
        let fseq = self.next_fseq;
        let v_done = self.v + work / demand;
        self.tasks.insert(
            (key.job, key.seq),
            Task {
                demand,
                v_done,
                fseq,
            },
        );
        self.heap.push(std::cmp::Reverse((
            v_done.to_bits(),
            fseq,
            key.job,
            key.seq,
        )));
        self.total_demand += demand;
        self.refresh();
    }

    /// Recomputes the shared-rate coefficients and the usage aggregate
    /// from the incrementally maintained `total_demand` after a
    /// membership change — O(1), never re-folds the task set. A drained
    /// resource resets its virtual clock (and drops any stale heap
    /// entries) so float precision does not decay over a long run.
    fn refresh(&mut self) {
        let n = self.tasks.len();
        if n == 0 {
            self.share = 1.0;
            self.interference = 1.0;
            self.usage_sum = 0.0;
            self.total_demand = 0.0;
            self.v = 0.0;
            self.heap.clear();
            return;
        }
        self.total_demand = self.total_demand.max(0.0);
        self.share = if self.total_demand > self.capacity {
            self.capacity / self.total_demand
        } else {
            1.0
        };
        self.interference = 1.0 / (1.0 + self.beta * (n as f64 - 1.0));
        self.usage_sum = self.total_demand * self.share * self.interference;
    }

    /// Pops stale heap entries (cancelled tasks) off the top, restoring
    /// the invariant that the heap head — if any — is a live task. Must
    /// run after every operation that removes tasks.
    fn purge_stale_top(&mut self) {
        while let Some(&std::cmp::Reverse((_, fseq, job, seq))) = self.heap.peek() {
            if self.tasks.get(&(job, seq)).is_some_and(|t| t.fseq == fseq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Instantaneous total consumption (for utilization accounting),
    /// in `[0, capacity]`.
    pub fn usage(&self) -> f64 {
        self.usage_sum.min(self.capacity)
    }

    /// Seconds until the next task completes at current rates, or
    /// `None` when idle. O(1): the heap head is kept live, and all
    /// tasks share one rate multiplier.
    pub fn time_to_next_completion(&self) -> Option<f64> {
        let &std::cmp::Reverse((bits, _, _, _)) = self.heap.peek()?;
        let rate = self.share * self.interference;
        Some(((f64::from_bits(bits) - self.v) / rate).max(0.0))
    }

    /// Advances all tasks by `dt` seconds, returning `(finished_keys,
    /// consumed_resource_seconds)`.
    ///
    /// Tasks whose remaining work reaches (near) zero are removed and
    /// reported in completion order (ties broken by insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn advance(&mut self, dt: f64) -> (Vec<TaskKey>, f64) {
        let mut finished = Vec::new();
        let consumed = self.advance_into(dt, &mut finished);
        (finished, consumed)
    }

    /// [`Self::advance`] against a caller-owned completion buffer:
    /// finished keys are *appended* to `out` (existing contents are
    /// preserved), so the per-wake drain in the driver reuses one
    /// buffer across both resources and never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn advance_into(&mut self, dt: f64, out: &mut Vec<TaskKey>) -> f64 {
        assert!(dt >= 0.0, "time cannot run backwards");
        if self.tasks.is_empty() || dt == 0.0 {
            return 0.0;
        }
        let consumed = self.usage() * dt;
        self.v += self.share * self.interference * dt;
        let mut popped = false;
        while let Some(&std::cmp::Reverse((bits, fseq, job, seq))) = self.heap.peek() {
            let Some(task) = self.tasks.get(&(job, seq)) else {
                self.heap.pop();
                continue;
            };
            if task.fseq != fseq {
                self.heap.pop();
                continue;
            }
            // A task is done when its residual work — `(v_done − v) ×
            // demand` — is within the same 1e-9 demand-seconds the old
            // per-task decrement used.
            if self.v < f64::from_bits(bits) - 1e-9 / task.demand {
                break;
            }
            self.heap.pop();
            let task = self.tasks.remove(&(job, seq)).expect("live task");
            self.total_demand -= task.demand;
            out.push(TaskKey { job, seq });
            popped = true;
        }
        if popped {
            self.refresh();
            self.purge_stale_top();
        }
        consumed
    }

    /// Removes a task regardless of progress (job pause/migration).
    /// Returns the remaining work if the task was present.
    pub fn cancel(&mut self, key: TaskKey) -> Option<f64> {
        let task = self.tasks.remove(&(key.job, key.seq))?;
        self.total_demand -= task.demand;
        let remaining = ((task.v_done - self.v) * task.demand).max(0.0);
        self.refresh();
        self.purge_stale_top();
        Some(remaining)
    }

    /// Removes every task belonging to `job` (pause / failure paths).
    pub fn cancel_all_of(&mut self, job: usize) {
        let keys: Vec<(usize, u64)> = self
            .tasks
            .range((job, 0)..=(job, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        if keys.is_empty() {
            return;
        }
        for k in keys {
            let task = self.tasks.remove(&k).expect("ranged key");
            self.total_demand -= task.demand;
        }
        self.refresh();
        self.purge_stale_top();
    }

    /// Keys of active tasks belonging to `job`, in admission order
    /// (`seq` is monotone per job).
    pub fn tasks_of(&self, job: usize) -> Vec<TaskKey> {
        self.tasks
            .range((job, 0)..=(job, u64::MAX))
            .map(|(&(job, seq), _)| TaskKey { job, seq })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(job: usize, seq: u64) -> TaskKey {
        TaskKey { job, seq }
    }

    #[test]
    fn single_task_runs_at_demand() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(0, 0), 0.5, 1.0); // 1 demand-second at demand 0.5 -> 2s
        assert_eq!(f.time_to_next_completion(), Some(2.0));
        let (done, used) = f.advance(2.0);
        assert_eq!(done, vec![key(0, 0)]);
        assert!((used - 1.0).abs() < 1e-9);
        assert!(f.is_empty());
    }

    #[test]
    fn two_full_demand_tasks_share_evenly() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(0, 0), 1.0, 1.0);
        f.add(key(1, 0), 1.0, 1.0);
        // Each runs at rate 0.5 -> both finish at t = 2.
        assert_eq!(f.time_to_next_completion(), Some(2.0));
        let (done, _) = f.advance(2.0);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn undersubscribed_tasks_run_concurrently_at_full_rate() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(0, 0), 0.4, 0.4); // alone: 1s
        f.add(key(1, 0), 0.4, 0.8); // alone: 2s
                                    // Total demand 0.8 <= 1: both at full rate.
        let (done, used) = f.advance(1.0);
        assert_eq!(done, vec![key(0, 0)]);
        assert!((used - 0.8).abs() < 1e-9);
        let (done, _) = f.advance(1.0);
        assert_eq!(done, vec![key(1, 0)]);
    }

    #[test]
    fn interference_slows_coscheduled_tasks() {
        let mut fair = Fluid::new(1.0, 0.0);
        let mut thrash = Fluid::new(1.0, 0.25);
        for f in [&mut fair, &mut thrash] {
            f.add(key(0, 0), 1.0, 1.0);
            f.add(key(1, 0), 1.0, 1.0);
        }
        let t_fair = fair.time_to_next_completion().unwrap();
        let t_thrash = thrash.time_to_next_completion().unwrap();
        assert_eq!(t_fair, 2.0);
        assert!((t_thrash - 2.5).abs() < 1e-9); // 2 * (1 + 0.25)
    }

    #[test]
    fn partial_advance_preserves_work_conservation() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(0, 0), 1.0, 3.0);
        let (done, _) = f.advance(1.0);
        assert!(done.is_empty());
        f.add(key(1, 0), 1.0, 1.0); // now sharing
                                    // Remaining: task0 = 2.0, task1 = 1.0, each at rate 0.5.
        assert_eq!(f.time_to_next_completion(), Some(2.0));
        let (done, _) = f.advance(2.0);
        assert_eq!(done, vec![key(1, 0)]);
        // Task0 has 1.0 left, alone again.
        assert_eq!(f.time_to_next_completion(), Some(1.0));
    }

    #[test]
    fn cancel_returns_remaining_work() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(3, 1), 1.0, 5.0);
        f.advance(2.0);
        assert_eq!(f.cancel(key(3, 1)), Some(3.0));
        assert_eq!(f.cancel(key(3, 1)), None);
    }

    #[test]
    fn usage_caps_at_capacity() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(0, 0), 0.7, 1.0);
        assert!((f.usage() - 0.7).abs() < 1e-9);
        f.add(key(1, 0), 0.7, 1.0);
        assert!((f.usage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_resource_reports_none() {
        let f = Fluid::new(1.0, 0.1);
        assert_eq!(f.time_to_next_completion(), None);
        assert_eq!(f.usage(), 0.0);
    }

    #[test]
    fn zero_work_task_finishes_immediately() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(0, 0), 1.0, 0.0);
        assert_eq!(f.time_to_next_completion(), Some(0.0));
        let (done, _) = f.advance(0.0);
        // dt = 0 short-circuits; a minimal advance flushes it.
        assert!(done.is_empty());
        let (done, _) = f.advance(1e-12);
        assert_eq!(done, vec![key(0, 0)]);
    }

    #[test]
    fn cancel_all_of_drops_every_task_of_the_job() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(0, 0), 0.3, 1.0);
        f.add(key(1, 0), 0.3, 1.0);
        f.add(key(0, 1), 0.3, 1.0);
        f.cancel_all_of(0);
        assert_eq!(f.len(), 1);
        assert!(f.tasks_of(0).is_empty());
        assert_eq!(f.tasks_of(1).len(), 1);
    }

    #[test]
    fn tasks_of_filters_by_job() {
        let mut f = Fluid::new(1.0, 0.0);
        f.add(key(0, 0), 0.3, 1.0);
        f.add(key(1, 0), 0.3, 1.0);
        f.add(key(0, 1), 0.3, 1.0);
        assert_eq!(f.tasks_of(0).len(), 2);
        assert_eq!(f.tasks_of(1).len(), 1);
        assert_eq!(f.tasks_of(9).len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Work is conserved: however a task's service is sliced across
        /// advances and whatever shares the resource, the total consumed
        /// resource-seconds equal the total work added.
        #[test]
        fn work_conservation(
            tasks in prop::collection::vec((0.05f64..1.0, 0.01f64..50.0), 1..12),
            beta in 0.0f64..0.3,
        ) {
            let mut f = Fluid::new(1.0, beta);
            let mut total_work = 0.0;
            for (i, &(demand, work)) in tasks.iter().enumerate() {
                f.add(TaskKey { job: i, seq: 0 }, demand, work);
                total_work += work;
            }
            let mut consumed = 0.0;
            let mut guard = 0;
            while !f.is_empty() {
                let dt = f
                    .time_to_next_completion()
                    .expect("non-empty resource progresses");
                let (_, used) = f.advance(dt.max(1e-12));
                consumed += used;
                guard += 1;
                prop_assert!(guard < 10_000, "resource did not drain");
            }
            prop_assert!(
                (consumed - total_work).abs() < 1e-6 * total_work.max(1.0),
                "consumed {consumed} vs work {total_work}"
            );
        }

        /// Usage never exceeds capacity, and completion order respects
        /// work/demand ratios for equal-demand tasks.
        #[test]
        fn usage_bounded_and_sjf_order_for_equal_demands(
            works in prop::collection::vec(0.1f64..20.0, 2..8),
        ) {
            let mut f = Fluid::new(1.0, 0.0);
            for (i, &w) in works.iter().enumerate() {
                f.add(TaskKey { job: i, seq: 0 }, 1.0, w);
            }
            prop_assert!(f.usage() <= 1.0 + 1e-9);
            let mut finished: Vec<usize> = Vec::new();
            let mut guard = 0;
            while !f.is_empty() {
                let dt = f.time_to_next_completion().expect("non-empty");
                let (done, _) = f.advance(dt.max(1e-12));
                finished.extend(done.into_iter().map(|k| k.job));
                guard += 1;
                prop_assert!(guard < 10_000);
            }
            // Equal demands share equally, so completion follows work
            // order (ties may complete together in either order).
            for pair in finished.windows(2) {
                prop_assert!(
                    works[pair[0]] <= works[pair[1]] + 1e-9,
                    "task {} (w={}) finished before {} (w={})",
                    pair[0], works[pair[0]], pair[1], works[pair[1]]
                );
            }
        }

        /// Cancelling mid-flight returns exactly the work not yet done.
        #[test]
        fn cancel_accounts_remaining_work(
            demand in 0.1f64..1.0,
            work in 1.0f64..50.0,
            fraction in 0.0f64..0.95,
        ) {
            let mut f = Fluid::new(1.0, 0.0);
            f.add(TaskKey { job: 0, seq: 0 }, demand, work);
            // Alone, the task progresses at `demand`: run a fraction.
            let dt = work / demand * fraction;
            f.advance(dt);
            let left = f.cancel(TaskKey { job: 0, seq: 0 }).expect("present");
            prop_assert!(
                (left - work * (1.0 - fraction)).abs() < 1e-6,
                "left {left}, expected {}",
                work * (1.0 - fraction)
            );
        }
    }
}
