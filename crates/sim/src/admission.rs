//! OASiS-style admission control for open-loop arrivals.
//!
//! Under sustained traffic the master need not accept every job the
//! instant it arrives. "Online Job Scheduling in Distributed Machine
//! Learning Clusters" (PAPERS.md) keeps long-run utilization high by
//! pricing each arrival against the cluster's current state and
//! admitting, delaying, or rejecting it. This module defines that
//! decision surface for the simulator: an [`AdmissionPolicy`] consulted
//! by `Driver::run_open_loop` at the top of every arrival event.
//!
//! Contract highlights (asserted by `tests/open_loop_acceptance.rs`):
//!
//! - **Books balance.** Every offered job ends admitted or rejected —
//!   never lost. Deferral only re-queues the offer.
//! - **Bounded starvation.** A deferred job is re-offered every
//!   `SimConfig::admission_reoffer_secs`; after
//!   `SimConfig::admission_max_deferrals` deferrals the *driver*
//!   force-admits it, so no policy can starve a job beyond
//!   `max_deferrals × reoffer_secs` of queue wait.
//! - **Dead cluster.** Every built-in policy rejects outright when the
//!   cluster has no machines left — there is nothing to wait for.

use harmony_core::JobSpec;

/// What the admission layer says about one offer of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Hand the job to the scheduler now.
    Admit,
    /// Keep the job queued; re-offer it after the configured interval.
    Defer,
    /// Turn the job away for good (terminal, never scheduled).
    Reject,
}

/// Cluster state visible to an admission decision.
///
/// Plain data, so policies are unit-testable without a driver.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionContext<'a> {
    /// Simulated time of the offer, seconds.
    pub now: f64,
    /// Machines currently alive in the cluster (survivors of any fault
    /// plan). Zero means a dead cluster.
    pub machines: u32,
    /// Alive machines not currently allocated to any job group.
    pub free_machines: u32,
    /// Live jobs already admitted but not running (waiting, profiled
    /// or paused) — the scheduler's backlog, excluding this candidate.
    pub backlog: usize,
    /// How many times this job has already been deferred.
    pub deferrals: u32,
    /// Marginal Eq. 2/Eq. 4 utility of admitting the candidate now
    /// (`Scheduler::price_candidate`), present only when the policy
    /// asked for pricing via [`AdmissionPolicy::needs_pricing`].
    pub marginal_utility: Option<f64>,
    /// The arriving job's specification.
    pub spec: &'a JobSpec,
}

/// An online admission policy: accept, delay, or reject each offer.
pub trait AdmissionPolicy {
    /// Short name for report labels.
    fn name(&self) -> &'static str;

    /// Whether offers to this policy should carry
    /// [`AdmissionContext::marginal_utility`]. Pricing costs a targeted
    /// scheduler query per offer, so the driver only pays for it when
    /// the policy will read it.
    fn needs_pricing(&self) -> bool {
        false
    }

    /// Decides one offer.
    fn decide(&mut self, ctx: &AdmissionContext<'_>) -> AdmissionDecision;
}

/// Admit everything the cluster can physically host — the closed-loop
/// behavior. `Driver::run_open_loop` with this policy is byte-identical
/// to `Driver::run` on the captured trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &'static str {
        "admit-all"
    }

    fn decide(&mut self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        if ctx.machines == 0 {
            return AdmissionDecision::Reject;
        }
        AdmissionDecision::Admit
    }
}

/// Defer arrivals while the scheduler's backlog is at or above a cap —
/// a plain load-shedding queue with no pricing.
#[derive(Debug, Clone, Copy)]
pub struct QueueCap {
    /// Admit while `backlog < max_backlog`; defer otherwise.
    pub max_backlog: usize,
}

impl QueueCap {
    /// A cap of `max_backlog` queued-but-not-running jobs.
    pub fn new(max_backlog: usize) -> Self {
        Self { max_backlog }
    }
}

impl AdmissionPolicy for QueueCap {
    fn name(&self) -> &'static str {
        "queue-cap"
    }

    fn decide(&mut self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        if ctx.machines == 0 {
            return AdmissionDecision::Reject;
        }
        if ctx.backlog >= self.max_backlog {
            AdmissionDecision::Defer
        } else {
            AdmissionDecision::Admit
        }
    }
}

/// OASiS-style utility pricing: admit an arrival only while its
/// marginal predicted-utilization gain clears a threshold; defer
/// losers until the cluster state improves (or the driver's starvation
/// guard force-admits them), optionally rejecting after a deferral
/// budget.
///
/// A `threshold` of zero (or below) asks for no pricing at all and
/// admits everything — exactly [`AdmitAll`], byte for byte.
#[derive(Debug, Clone, Copy)]
pub struct UtilityThreshold {
    /// Minimum marginal Eq. 4 score gain required to admit now.
    pub threshold: f64,
    /// Reject (instead of defer) once a job has been deferred this
    /// many times. `None` defers until the driver force-admits.
    pub reject_after: Option<u32>,
}

impl UtilityThreshold {
    /// A pricing policy with the given marginal-utility threshold and
    /// no rejection budget.
    pub fn new(threshold: f64) -> Self {
        Self {
            threshold,
            reject_after: None,
        }
    }
}

impl AdmissionPolicy for UtilityThreshold {
    fn name(&self) -> &'static str {
        "utility-threshold"
    }

    fn needs_pricing(&self) -> bool {
        self.threshold > 0.0
    }

    fn decide(&mut self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        if ctx.machines == 0 {
            return AdmissionDecision::Reject;
        }
        if self.threshold <= 0.0 {
            return AdmissionDecision::Admit;
        }
        let marginal = ctx
            .marginal_utility
            .expect("driver prices offers for a policy whose needs_pricing() is true");
        if marginal >= self.threshold {
            return AdmissionDecision::Admit;
        }
        match self.reject_after {
            Some(budget) if ctx.deferrals >= budget => AdmissionDecision::Reject,
            _ => AdmissionDecision::Defer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::{AppKind, SyncKind};

    fn spec() -> JobSpec {
        JobSpec {
            name: "mlr-test".into(),
            app: AppKind::Mlr,
            dataset: "synthetic".into(),
            input_bytes: 1 << 30,
            model_bytes: 1 << 20,
            comp_cost: 8.0,
            net_cost: 2.0,
            sync: SyncKind::ParameterServer,
            pull_fraction: 0.5,
            iters_per_epoch: 5,
            target_epochs: 4,
        }
    }

    fn ctx(spec: &JobSpec) -> AdmissionContext<'_> {
        AdmissionContext {
            now: 100.0,
            machines: 8,
            free_machines: 4,
            backlog: 0,
            deferrals: 0,
            marginal_utility: None,
            spec,
        }
    }

    #[test]
    fn zero_machine_cluster_rejects_everything() {
        // The dead-cluster edge case: every built-in policy turns the
        // job away rather than queueing it forever.
        let spec = spec();
        let dead = AdmissionContext {
            machines: 0,
            free_machines: 0,
            marginal_utility: Some(1.0),
            ..ctx(&spec)
        };
        assert_eq!(AdmitAll.decide(&dead), AdmissionDecision::Reject);
        assert_eq!(QueueCap::new(100).decide(&dead), AdmissionDecision::Reject);
        assert_eq!(
            UtilityThreshold::new(0.0).decide(&dead),
            AdmissionDecision::Reject
        );
        assert_eq!(
            UtilityThreshold::new(0.5).decide(&dead),
            AdmissionDecision::Reject
        );
    }

    #[test]
    fn admit_all_admits_whenever_machines_exist() {
        let spec = spec();
        let mut c = ctx(&spec);
        c.backlog = 10_000;
        c.free_machines = 0;
        assert_eq!(AdmitAll.decide(&c), AdmissionDecision::Admit);
    }

    #[test]
    fn queue_cap_defers_at_the_cap_and_admits_below() {
        let spec = spec();
        let mut c = ctx(&spec);
        let mut p = QueueCap::new(3);
        assert!(!p.needs_pricing());
        c.backlog = 2;
        assert_eq!(p.decide(&c), AdmissionDecision::Admit);
        c.backlog = 3;
        assert_eq!(p.decide(&c), AdmissionDecision::Defer);
        c.backlog = 30;
        assert_eq!(p.decide(&c), AdmissionDecision::Defer);
    }

    #[test]
    fn zero_threshold_is_admit_all_and_asks_no_pricing() {
        let spec = spec();
        let p = UtilityThreshold::new(0.0);
        assert!(!p.needs_pricing());
        let mut c = ctx(&spec);
        c.backlog = 999;
        c.marginal_utility = None; // driver sends none when unpriced
        assert_eq!(
            UtilityThreshold::new(0.0).decide(&c),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn utility_threshold_gates_on_the_marginal_score() {
        let spec = spec();
        let mut p = UtilityThreshold::new(0.1);
        assert!(p.needs_pricing());
        let mut c = ctx(&spec);
        c.marginal_utility = Some(0.2);
        assert_eq!(p.decide(&c), AdmissionDecision::Admit);
        c.marginal_utility = Some(0.05);
        assert_eq!(p.decide(&c), AdmissionDecision::Defer);
        c.marginal_utility = Some(-0.3);
        assert_eq!(p.decide(&c), AdmissionDecision::Defer);
    }

    #[test]
    fn reject_after_turns_persistent_losers_away() {
        let spec = spec();
        let mut p = UtilityThreshold {
            threshold: 0.1,
            reject_after: Some(2),
        };
        let mut c = ctx(&spec);
        c.marginal_utility = Some(0.0);
        c.deferrals = 1;
        assert_eq!(p.decide(&c), AdmissionDecision::Defer);
        c.deferrals = 2;
        assert_eq!(p.decide(&c), AdmissionDecision::Reject);
    }
}
