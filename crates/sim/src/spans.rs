//! Subtask span recording and export.
//!
//! When [`crate::SimConfig::record_spans`] is on, the driver records one
//! span per executed subtask — which job, which phase, which group, and
//! when it ran. The spans make the paper's schedule illustrations
//! (Figures 5 and 7) directly observable:
//!
//! - [`ascii_gantt`] renders a compact per-job timeline for terminals;
//! - [`to_chrome_trace`] emits the Chrome/Perfetto `chrome://tracing`
//!   JSON array format (open the file in `ui.perfetto.dev`), one track
//!   per job, so real runs can be inspected visually.

use crate::runtime::Phase;

/// One executed subtask occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtaskSpan {
    /// Driver-level job index.
    pub job: usize,
    /// Job display name.
    pub job_name: String,
    /// Which subtask ran.
    pub phase: Phase,
    /// Group hosting the job at the time.
    pub group: usize,
    /// Dispatch time (seconds).
    pub start: f64,
    /// Completion time (seconds).
    pub end: f64,
}

impl SubtaskSpan {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

fn phase_label(phase: Phase) -> &'static str {
    match phase {
        Phase::Pull => "PULL",
        Phase::Comp => "COMP",
        Phase::Push => "PUSH",
    }
}

/// Renders spans as a Chrome trace-event JSON array (`[ {...}, ... ]`).
///
/// Timestamps are microseconds as the format requires; each job becomes
/// one "thread" so Perfetto lays jobs out as parallel tracks.
pub fn to_chrome_trace(spans: &[SubtaskSpan]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // Manual JSON: names are workload labels ([a-z0-9-] only), no
        // escaping hazards.
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
             \"ts\": {:.0}, \"dur\": {:.0}, \"pid\": {}, \"tid\": {}, \
             \"args\": {{\"job\": \"{}\"}}}}",
            phase_label(s.phase),
            if s.phase.is_cpu() { "cpu" } else { "network" },
            s.start * 1e6,
            s.duration() * 1e6,
            s.group,
            s.job,
            s.job_name,
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Renders spans as an ASCII Gantt chart, one row per job: `C` marks
/// COMP time, `n` marks PULL/PUSH time, `.` is idle. `width` is the
/// number of character columns the full time range maps onto.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn ascii_gantt(spans: &[SubtaskSpan], width: usize) -> String {
    assert!(width > 0, "gantt width must be non-zero");
    if spans.is_empty() {
        return String::new();
    }
    let t0 = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
    let t1 = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    let span = (t1 - t0).max(f64::MIN_POSITIVE);
    let col = |t: f64| (((t - t0) / span) * (width as f64 - 1.0)).round() as usize;

    let mut jobs: Vec<(usize, &str)> = spans.iter().map(|s| (s.job, s.job_name.as_str())).collect();
    jobs.sort_unstable();
    jobs.dedup();
    let label_w = jobs.iter().map(|(_, n)| n.len()).max().unwrap_or(0);

    let mut out = String::new();
    for (job, name) in jobs {
        let mut row = vec!['.'; width];
        for s in spans.iter().filter(|s| s.job == job) {
            let mark = if s.phase.is_cpu() { 'C' } else { 'n' };
            for cell in row
                .iter_mut()
                .take(col(s.end).min(width - 1) + 1)
                .skip(col(s.start))
            {
                *cell = mark;
            }
        }
        out.push_str(&format!("{name:<label_w$} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:<label_w$}  {:<.1}s{}{:>.1}s\n",
        "",
        t0,
        " ".repeat(width.saturating_sub(8)),
        t1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(job: usize, phase: Phase, start: f64, end: f64) -> SubtaskSpan {
        SubtaskSpan {
            job,
            job_name: format!("job{job}"),
            phase,
            group: 0,
            start,
            end,
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_json_array() {
        let spans = vec![
            span(0, Phase::Pull, 0.0, 1.0),
            span(0, Phase::Comp, 1.0, 3.0),
            span(1, Phase::Push, 2.0, 2.5),
        ];
        let json = to_chrome_trace(&spans);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert!(json.contains("\"cat\": \"cpu\""));
        assert!(json.contains("\"cat\": \"network\""));
        // Durations in microseconds.
        assert!(json.contains("\"dur\": 2000000"));
        // Balanced braces (crude well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn gantt_rows_cover_each_job() {
        let spans = vec![
            span(0, Phase::Comp, 0.0, 5.0),
            span(1, Phase::Pull, 5.0, 10.0),
        ];
        let g = ascii_gantt(&spans, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // two jobs + time axis
        assert!(lines[0].starts_with("job0"));
        assert!(lines[0].contains('C'));
        assert!(!lines[0].contains('n'));
        assert!(lines[1].contains('n'));
        assert!(!lines[1].contains('C'));
    }

    #[test]
    fn gantt_positions_reflect_time() {
        let spans = vec![
            span(0, Phase::Comp, 0.0, 1.0),
            span(0, Phase::Comp, 9.0, 10.0),
        ];
        let g = ascii_gantt(&spans, 42);
        let row = g.lines().next().expect("row");
        let bar: &str = &row[row.find('|').expect("bar") + 1..];
        assert!(bar.starts_with('C'), "{bar}");
        assert!(bar.trim_end_matches('|').ends_with('C'), "{bar}");
        assert!(bar.contains('.'), "{bar}");
    }

    #[test]
    fn empty_spans_render_empty() {
        assert!(ascii_gantt(&[], 10).is_empty());
        assert_eq!(to_chrome_trace(&[]), "[\n\n]\n");
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert_eq!(span(0, Phase::Comp, 2.0, 5.0).duration(), 3.0);
    }
}
