//! A discrete-event cluster simulator for multi-job Parameter-Server
//! training — the substrate on which the Harmony paper's evaluation is
//! reproduced.
//!
//! The paper's testbed is 100 AWS m4.2xlarge instances running a
//! Java/REEF PS system. This crate replaces that testbed with a
//! deterministic fluid simulation that preserves the semantics every
//! experiment depends on:
//!
//! - **Subtask execution** (§IV-A): each job group runs its members'
//!   PULL → COMP → PUSH subtasks through per-group CPU and network
//!   resources. Under Harmony's discipline one COMP subtask runs at a
//!   time and at most two COMM subtasks share the NIC; under the naive
//!   baseline everything dispatches at once and contends.
//! - **Resource contention**: resources are fluid (generalized processor
//!   sharing) — `k` concurrent CPU subtasks each progress at `1/k` rate,
//!   with a configurable interference penalty on top (cache/scheduler
//!   thrash), which is what makes naive co-location "lagged and
//!   unpredictable" (§II-B).
//! - **DoP scaling** (Eq. 2): COMP time scales as `1/m_g`; COMM time is
//!   DoP-invariant.
//! - **Memory pressure** (§IV-C): per-machine residency from input,
//!   model, and the active COMP subtask's working set (with a JVM-style
//!   expansion factor); a GC model stretches computation as memory
//!   fills, and exceeding capacity OOMs the offending job — unless
//!   spill/reload (α) makes it fit.
//! - **Stragglers**: subtask durations carry a `max`-over-machines
//!   lognormal noise factor, so barriers wait for the slowest machine.
//!
//! Because all machines of a group run the same co-located jobs in
//! barrier lockstep (the paper's design), the simulator tracks state at
//! *group* granularity with machine-count-aware costs — equivalent to a
//! per-machine simulation for every quantity the paper reports, at a
//! fraction of the event load.
//!
//! The entry point is [`driver::Driver`], which executes a full
//! workload under a pluggable [`config::SchedulerKind`] and produces a
//! [`report::RunReport`] with JCTs, makespan, utilization timelines,
//! grouping snapshots, prediction-error samples and memory statistics.

pub mod admission;
pub mod config;
pub mod driver;
pub(crate) mod events;
pub mod fault;
pub mod fluid;
pub mod groupmem;
pub mod noise;
pub mod report;
pub mod runtime;
pub(crate) mod schedscratch;
pub mod spans;
pub mod workload;

pub use admission::{
    AdmissionContext, AdmissionDecision, AdmissionPolicy, AdmitAll, QueueCap, UtilityThreshold,
};
pub use config::{CompShift, PushDensity, ReloadPolicy, SchedulerKind, SimConfig};
pub use driver::Driver;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultRates};
pub use report::{JobOutcome, PredictionSample, ReschedCounters, ReschedReason, RunReport};
pub use spans::{ascii_gantt, to_chrome_trace, SubtaskSpan};
pub use workload::{WorkloadGen, WorkloadGenConfig};
