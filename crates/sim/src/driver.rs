//! The simulation driver: events, scheduling policies, and the full run
//! loop.
//!
//! One [`Driver::run`] call executes a complete workload — arrivals,
//! profiling, scheduling, subtask execution, memory management,
//! regrouping, completion — under one [`SchedulerKind`] and returns a
//! [`RunReport`].

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use harmony_core::baseline::IsolatedScheduler;
use harmony_core::group::GroupId;
use harmony_core::job::JobId;
use harmony_core::oracle::OracleScheduler;
use harmony_core::profile::{JobProfile, ProfileStore};
use harmony_core::regroup::{ClusterView, RegroupDecision, Regrouper};
use harmony_core::schedule::{ScheduleOutcome, Scheduler};
use harmony_mem::AlphaController;
use harmony_metrics::{AdmissionStats, EventLog, Hist, MigrationStats, OnlineStats, Timeline};

use crate::admission::{AdmissionContext, AdmissionDecision, AdmissionPolicy};
use crate::config::{ReloadPolicy, SchedulerKind, SimConfig};
use crate::events::LaneQueue;
use crate::fault::FaultKind;
use crate::fluid::TaskKey;
use crate::groupmem::{self, FitOutcome, JobFootprint, MemoryParams};
use crate::noise::Straggler;
use crate::report::{
    GroupingSnapshot, JobOutcome, PredictionSample, ReschedCounters, ReschedReason, RunReport,
};
use crate::runtime::{ExecPhase, GroupSim, JobSim, Phase, SimJobState};
use crate::schedscratch::SimSchedScratch;
use crate::spans::SubtaskSpan;
use crate::workload::WorkloadGen;

/// Member-count floor above which coalesced mode builds and tears down
/// groups with one batched memory re-plan instead of one per member.
/// Below it the per-member path is cheap and keeps the coalesced arm's
/// decision history close to the exact arm's (the tiny-workload
/// acceptance matrix runs entirely under this floor); above it the
/// per-member re-plans make group builds O(k²), which dominated the
/// event wall once windows let groups grow into the hundreds.
const COALESCE_BATCH_BUILD_MIN: usize = 32;

/// Deterministic exponential-ish inter-failure gap (inverse CDF on a
/// splitmix64 stream).
fn next_failure_gap(seed: u64, n: u64, mtbf: f64) -> f64 {
    let mut z = (seed ^ 0xD6E8_FEB8_6659_FD93)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add((n + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z as f64 / u64::MAX as f64).clamp(1e-9, 1.0 - 1e-9);
    -u.ln() * mtbf
}

/// Deterministic per-(seed, job, component) relative error in
/// `[-amplitude, +amplitude]`, fixed for a whole run (splitmix64 hash).
fn persistent_error(seed: u64, job: u64, component: u64, amplitude: f64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(job.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(component.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = z as f64 / u64::MAX as f64; // [0, 1]
    (unit * 2.0 - 1.0) * amplitude
}

/// Heap-ordered simulation time (finite `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Times are finite by construction; total_cmp agrees with the
        // numeric order there and cannot panic.
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Arrival(usize),
    Wake {
        group: usize,
        gen: u64,
    },
    Sample,
    NaiveForm,
    /// A machine fails somewhere in the cluster (§VI).
    Failure(u64),
    /// Scheduled fault from the configured
    /// [`FaultPlan`](crate::fault::FaultPlan); the payload indexes the
    /// plan's event list.
    Fault(usize),
    /// A migrating job's checkpoint finished writing: re-place it
    /// ([`SimConfig::live_migration`]).
    Migrate(usize),
    /// A coalescing window expired: flush the deferred finish pass
    /// ([`SimConfig::coalesced_passes`]). Stale generations — the
    /// window already flushed early or was subsumed by another full
    /// pass — no-op.
    FlushCoalesce(u64),
}

#[derive(Debug)]
enum Notify {
    Profiled(usize),
    /// A running job's smoothed profile moved ≥ the similarity
    /// threshold away from the basis its schedule was computed with
    /// (§IV-B4 drift; only produced with
    /// [`SimConfig::profile_feedback`] on).
    Drifted(usize),
    Finished {
        job: usize,
        group: usize,
    },
}

/// The discrete-event simulation driver.
pub struct Driver {
    cfg: SimConfig,
    mem: MemoryParams,
    jobs: Vec<JobSim>,
    groups: Vec<Option<GroupSim>>,
    free_machines: u32,
    now: f64,
    events: LaneQueue<(Time, u64, EventKind)>,
    event_seq: u64,
    noise: Straggler,
    scheduler: Scheduler,
    regrouper: Regrouper,
    oracle: OracleScheduler,
    bootstrapped: bool,
    naive_form_scheduled: bool,
    isolated_queue: VecDeque<usize>,
    /// Jobs that reached a terminal state (finished or failed); the
    /// live count is `jobs.len() - dead_jobs`, so the event loop never
    /// scans the job table to know whether work remains.
    dead_jobs: usize,
    /// Live jobs currently attached to a group — maintained at every
    /// attach/detach/terminal transition so utilization sampling never
    /// scans the job table (fast event path).
    active_scheduled: usize,
    /// Scratch arena: member snapshots taken while a group is mutated.
    scratch_members: Vec<usize>,
    /// Scratch arena: footprint buffer for the memory model.
    scratch_fp: Vec<JobFootprint>,
    /// Scratch arena: second footprint buffer (probe internals).
    scratch_fp2: Vec<JobFootprint>,
    /// Scratch arena: alive-group id snapshots for fault targeting.
    scratch_groups: Vec<usize>,
    /// Scratch arena: fluid completion keys drained on each group
    /// catch-up (one buffer for both resources, reused per wake).
    scratch_done: Vec<TaskKey>,
    /// Scratch arena: notifications produced while handling a wake.
    scratch_notes: Vec<Notify>,
    /// Scratch arena: notifications produced inside `bump_and_wake`
    /// (a separate buffer — `scratch_notes` may be checked out by the
    /// event loop while a notification handler re-enters a bump).
    scratch_notes_bump: Vec<Notify>,
    /// Persistent reschedule buffers (ordering, profiles, core scratch).
    sched_scratch: SimSchedScratch,
    /// Open-loop admission policy ([`Driver::run_open_loop`]); `None`
    /// in closed-loop runs, where every arrival dispatches directly.
    admission: Option<Box<dyn AdmissionPolicy>>,
    /// Admission decision counters and queue-wait distribution.
    admission_stats: AdmissionStats,
    /// Virtual time the open coalescing window started at; `None` when
    /// closed (always `None` with [`SimConfig::coalesced_passes`] off).
    coalesce_opened: Option<f64>,
    /// Finishes absorbed by the currently open window.
    coalesce_batch: usize,
    /// Window generation, stamped into [`EventKind::FlushCoalesce`] so
    /// expiry events for already-flushed windows no-op.
    coalesce_gen: u64,
    /// Notifications discovered while mutating group state; drained at
    /// the top event loop only, so scheduling never re-enters itself.
    deferred: Vec<Notify>,
    // Report accumulators.
    cpu_busy_total: f64,
    net_busy_total: f64,
    cpu_tl: Timeline,
    net_tl: Timeline,
    oom_events: Vec<(f64, String)>,
    snapshots: Vec<GroupingSnapshot>,
    predictions: Vec<PredictionSample>,
    sched_invocations: usize,
    sched_wall: Duration,
    event_wall: Duration,
    resched_reasons: ReschedCounters,
    migrations: usize,
    failures_injected: usize,
    /// Machines permanently removed by plan-driven crashes.
    machines_lost: u32,
    /// Jobs killed by plan-driven aborts.
    jobs_aborted: usize,
    /// Fault and recovery timeline (§VI).
    fault_log: EventLog,
    /// Seconds from each fault to the affected jobs' resumption.
    recovery_stats: OnlineStats,
    /// Live checkpoint/resume migrations (§IV-B4).
    migration_stats: MigrationStats,
    gc_seconds: f64,
    alpha_stats: OnlineStats,
    iter_wall_stats: OnlineStats,
    spans: Vec<SubtaskSpan>,
    /// Per-group, per-member iteration-period statistics; Eq. 1 is
    /// validated against the slowest member's mean period.
    group_iter_stats: Vec<std::collections::HashMap<usize, OnlineStats>>,
    concurrent_stats: OnlineStats,
    /// Coalescing windows opened over the run.
    coalesce_windows: usize,
    /// Finishes absorbed into windows instead of firing full passes.
    coalesced_finishes: usize,
    /// Targeted release passes run while windows were open.
    release_passes: usize,
    /// Per-window staleness: how long the deferred finish pass waited.
    coalesce_staleness: Hist,
}

impl Driver {
    /// Creates a driver for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid simulation config: {e}");
        }
        let mem = MemoryParams {
            capacity: cfg.machine.memory_bytes,
            expansion: cfg.memory_expansion,
            workspace_fraction: cfg.workspace_fraction,
        };
        Self {
            noise: Straggler::new(cfg.straggler_cv, cfg.seed ^ 0x5u64),
            scheduler: Scheduler::new(cfg.scheduler_config),
            regrouper: Regrouper::new(Scheduler::new(cfg.scheduler_config))
                .with_incremental(cfg.incremental_resched),
            oracle: OracleScheduler::new(cfg.scheduler_config),
            free_machines: cfg.machines,
            mem,
            events: LaneQueue::new(cfg.incremental_resched),
            cfg,
            jobs: Vec::new(),
            groups: Vec::new(),
            now: 0.0,
            event_seq: 0,
            bootstrapped: false,
            naive_form_scheduled: false,
            isolated_queue: VecDeque::new(),
            dead_jobs: 0,
            active_scheduled: 0,
            scratch_members: Vec::new(),
            scratch_fp: Vec::new(),
            scratch_fp2: Vec::new(),
            scratch_groups: Vec::new(),
            scratch_done: Vec::new(),
            scratch_notes: Vec::new(),
            scratch_notes_bump: Vec::new(),
            sched_scratch: SimSchedScratch::new(),
            admission: None,
            admission_stats: AdmissionStats::new(),
            coalesce_opened: None,
            coalesce_batch: 0,
            coalesce_gen: 0,
            deferred: Vec::new(),
            cpu_busy_total: 0.0,
            net_busy_total: 0.0,
            cpu_tl: Timeline::new("cpu-util"),
            net_tl: Timeline::new("net-util"),
            oom_events: Vec::new(),
            snapshots: Vec::new(),
            predictions: Vec::new(),
            sched_invocations: 0,
            sched_wall: Duration::ZERO,
            event_wall: Duration::ZERO,
            resched_reasons: ReschedCounters::default(),
            migrations: 0,
            failures_injected: 0,
            machines_lost: 0,
            jobs_aborted: 0,
            fault_log: EventLog::new(),
            recovery_stats: OnlineStats::new(),
            migration_stats: MigrationStats::new(),
            gc_seconds: 0.0,
            alpha_stats: OnlineStats::new(),
            iter_wall_stats: OnlineStats::new(),
            spans: Vec::new(),
            group_iter_stats: Vec::new(),
            concurrent_stats: OnlineStats::new(),
            coalesce_windows: 0,
            coalesced_finishes: 0,
            release_passes: 0,
            coalesce_staleness: Hist::new(),
        }
    }

    /// Runs the whole workload to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics on any of the validation failures [`Self::try_run`]
    /// reports as errors (mismatched lengths, invalid specs, bad
    /// arrival times, out-of-range scripted shifts).
    pub fn run(
        cfg: SimConfig,
        specs: Vec<harmony_core::job::JobSpec>,
        arrivals: Vec<f64>,
    ) -> RunReport {
        match Self::try_run(cfg, specs, arrivals) {
            Ok(r) => r,
            Err(e) => panic!("invalid run request: {e}"),
        }
    }

    /// [`Self::run`] with validation errors reported instead of
    /// panicking: mismatched spec/arrival lengths, invalid job specs,
    /// non-finite or negative arrival times, and scripted shifts
    /// naming out-of-range jobs all come back as `Err`.
    pub fn try_run(
        cfg: SimConfig,
        specs: Vec<harmony_core::job::JobSpec>,
        arrivals: Vec<f64>,
    ) -> Result<RunReport, String> {
        Self::run_prepared(cfg, specs, arrivals, None)
    }

    /// The open-loop entry: drains `gen`'s arrival process into a
    /// fixed trace and runs it with `policy` consulted at the top of
    /// every arrival event. With [`crate::admission::AdmitAll`] the
    /// report is byte-identical ([`RunReport::canonical_bytes`]) to
    /// [`Self::run`] on the generated `(specs, arrivals)` — the
    /// admission layer only diverges when a policy actually defers or
    /// rejects.
    pub fn run_open_loop(
        cfg: SimConfig,
        gen: WorkloadGen,
        policy: Box<dyn AdmissionPolicy>,
    ) -> Result<RunReport, String> {
        let (specs, arrivals) = gen.generate();
        Self::run_prepared(cfg, specs, arrivals, Some(policy))
    }

    /// [`Self::try_run`] with an admission policy consulted at every
    /// arrival: the open-loop admission layer applied to a fixed,
    /// caller-supplied trace. This is how burst workloads (many jobs
    /// at `t = 0`, which an interarrival process never emits) and
    /// captured replays exercise admission control.
    pub fn run_admitted(
        cfg: SimConfig,
        specs: Vec<harmony_core::job::JobSpec>,
        arrivals: Vec<f64>,
        policy: Box<dyn AdmissionPolicy>,
    ) -> Result<RunReport, String> {
        Self::run_prepared(cfg, specs, arrivals, Some(policy))
    }

    /// Shared setup for the closed- and open-loop entries. Arrivals
    /// and scripted shifts are pushed in the exact event-sequence
    /// order the closed loop has always used, so the open loop's
    /// tie-breaking is bit-compatible.
    fn run_prepared(
        cfg: SimConfig,
        specs: Vec<harmony_core::job::JobSpec>,
        arrivals: Vec<f64>,
        admission: Option<Box<dyn AdmissionPolicy>>,
    ) -> Result<RunReport, String> {
        if let Err(e) = cfg.validate() {
            return Err(format!("invalid simulation config: {e}"));
        }
        if specs.len() != arrivals.len() {
            return Err(format!(
                "one arrival time per job: {} specs but {} arrivals",
                specs.len(),
                arrivals.len()
            ));
        }
        for (i, at) in arrivals.iter().enumerate() {
            if !at.is_finite() || *at < 0.0 {
                return Err(format!("job {i} arrival time {at} not finite and >= 0"));
            }
        }
        for (i, spec) in specs.iter().enumerate() {
            if let Err(e) = spec.validate() {
                return Err(format!("job {i} spec invalid: {e}"));
            }
        }
        for s in &cfg.comp_shifts {
            if s.job >= specs.len() {
                return Err(format!(
                    "comp shift names job {} but only {} jobs exist",
                    s.job,
                    specs.len()
                ));
            }
        }
        for p in &cfg.push_densities {
            if p.job >= specs.len() {
                return Err(format!(
                    "push density names job {} but only {} jobs exist",
                    p.job,
                    specs.len()
                ));
            }
        }
        let mut d = Driver::new(cfg);
        d.admission = admission;
        for (i, (spec, at)) in specs.into_iter().zip(arrivals).enumerate() {
            d.jobs.push(JobSim::new(i, spec, at));
            d.push_event(at, EventKind::Arrival(i));
        }
        for s in &d.cfg.comp_shifts {
            d.jobs[s.job].comp_shift = Some((s.at_iteration, s.factor));
        }
        let densities = d.cfg.push_densities.clone();
        for p in &densities {
            d.jobs[p.job].push_density = Some(p.density);
        }
        d.push_event(0.0, EventKind::Sample);
        if let Some(mtbf) = d.cfg.failure_mtbf_secs {
            d.push_event(next_failure_gap(d.cfg.seed, 0, mtbf), EventKind::Failure(1));
        }
        if let Some(plan) = d.cfg.fault_plan.clone() {
            for (i, ev) in plan.events().iter().enumerate() {
                d.push_event(ev.at, EventKind::Fault(i));
            }
        }
        d.event_loop();
        Ok(d.finalize())
    }

    fn push_event(&mut self, at: f64, kind: EventKind) {
        self.event_seq += 1;
        // One lane per group (wake churn dominates event traffic); all
        // global events share lane 0.
        let lane = match kind {
            EventKind::Wake { group, .. } => group + 1,
            _ => 0,
        };
        self.events.push(lane, (Time(at), self.event_seq, kind));
    }

    fn live_jobs(&self) -> usize {
        debug_assert_eq!(
            self.jobs.len() - self.dead_jobs,
            self.jobs.iter().filter(|j| j.is_live()).count(),
            "dead-job counter out of sync"
        );
        self.jobs.len() - self.dead_jobs
    }

    /// Moves a job into a terminal state exactly once, keeping the
    /// dead-job counter (and thus `live_jobs`) exact.
    fn set_terminal(&mut self, j: usize, state: SimJobState, at: f64) {
        debug_assert!(matches!(state, SimJobState::Finished | SimJobState::Failed));
        // A pending migration dies with the job: a drifted job can reach
        // its final iteration (or be aborted / crash-killed) before the
        // pause boundary, and the checkpoint it announced must be
        // written off or the books never balance.
        if self.jobs[j].migrate_mark.take().is_some() {
            self.migration_stats.cancel();
        }
        self.jobs[j].migrate_origin = None;
        if self.jobs[j].is_live() {
            self.dead_jobs += 1;
            if self.jobs[j].group.is_some() {
                self.active_scheduled -= 1;
            }
        }
        self.jobs[j].state = state;
        self.jobs[j].finish = Some(at);
    }

    fn event_loop(&mut self) {
        let loop_t0 = Instant::now();
        let mut stall_breaker = 0;
        let debug = std::env::var_os("HARMONY_SIM_DEBUG").is_some();
        let mut popped = 0u64;
        let mut stale_wakes = 0u64;
        while let Some((Time(t), _, kind)) = self.events.pop() {
            if debug {
                popped += 1;
                if let EventKind::Wake { group, gen } = kind {
                    let live = self
                        .groups
                        .get(group)
                        .is_some_and(|g| g.as_ref().is_some_and(|g| g.gen == gen));
                    if !live {
                        stale_wakes += 1;
                    }
                }
            }
            if self.live_jobs() == 0 {
                break;
            }
            if t > self.cfg.max_sim_seconds {
                if std::env::var_os("HARMONY_SIM_DEBUG").is_some() {
                    for (i, job) in self.jobs.iter().enumerate() {
                        if job.is_live() {
                            eprintln!(
                                "stuck job {i} {}: state={:?} exec={:?} group={:?} iters={} pl={}",
                                job.spec.name,
                                job.state,
                                job.exec,
                                job.group,
                                job.iterations_done,
                                job.profiling_left
                            );
                        }
                    }
                    for g in self.alive_groups() {
                        let grp = self.groups[g].as_ref().unwrap();
                        eprintln!(
                            "alive group {g}: m={} jobs={:?} cpuq={:?} netq={:?} cpu_tasks={} net_tasks={} prof_host={}",
                            grp.machines, grp.jobs, grp.cpu_queue, grp.net_queue,
                            grp.cpu.len(), grp.net.len(), grp.profiling_host
                        );
                    }
                    eprintln!(
                        "free_machines={} bootstrapped={}",
                        self.free_machines, self.bootstrapped
                    );
                }
                // Runaway config: abandon remaining work as failed.
                for j in 0..self.jobs.len() {
                    if self.jobs[j].is_live() {
                        self.set_terminal(j, SimJobState::Failed, t);
                    }
                }
                break;
            }
            self.now = self.now.max(t);
            match kind {
                EventKind::Arrival(j) => self.on_arrival(j),
                EventKind::Wake { group, gen } => {
                    // This wake left the heap: clear its pending marker
                    // (stale-gen wakes leave newer markers untouched —
                    // the tuple no longer matches).
                    if let Some(grp) = self.groups.get_mut(group).and_then(Option::as_mut) {
                        if grp.pending_wake == Some((gen, t)) {
                            grp.pending_wake = None;
                        }
                    }
                    let valid = self
                        .groups
                        .get(group)
                        .is_some_and(|g| g.as_ref().is_some_and(|g| g.gen == gen));
                    if valid {
                        let mut notes = std::mem::take(&mut self.scratch_notes);
                        self.advance_group(group, &mut notes);
                        self.handle_notifications(&mut notes);
                        notes.clear();
                        self.scratch_notes = notes;
                    }
                }
                EventKind::Sample => {
                    self.sample_utilization();
                    if self.live_jobs() > 0 {
                        self.push_event(
                            self.now + self.cfg.utilization_sample_secs,
                            EventKind::Sample,
                        );
                    }
                }
                EventKind::NaiveForm => {
                    self.naive_form_scheduled = false;
                    self.naive_form_groups();
                }
                EventKind::Failure(n) => {
                    self.inject_failure(n);
                    if let Some(mtbf) = self.cfg.failure_mtbf_secs {
                        if self.live_jobs() > 0 {
                            self.push_event(
                                self.now + next_failure_gap(self.cfg.seed, n, mtbf),
                                EventKind::Failure(n + 1),
                            );
                        }
                    }
                }
                EventKind::Fault(i) => self.on_fault(i),
                EventKind::Migrate(j) => self.on_migrate_ready(j),
                EventKind::FlushCoalesce(gen) => self.on_flush_coalesce(gen),
            }
            // Drain notifications deferred during state mutation.
            let mut guard = 0;
            while !self.deferred.is_empty() {
                let mut notes = std::mem::take(&mut self.deferred);
                self.handle_notifications(&mut notes);
                // Hand the (drained) buffer back if nothing new was
                // deferred, preserving its capacity for the next round.
                if self.deferred.is_empty() {
                    notes.clear();
                    self.deferred = notes;
                    break;
                }
                guard += 1;
                assert!(guard < 1000, "deferred-notification livelock");
            }
            // Deadlock guardrail: live jobs but no pending events.
            if self.events.is_empty() && self.live_jobs() > 0 {
                stall_breaker += 1;
                assert!(
                    stall_breaker < 64,
                    "simulation stalled at t={} with {} live jobs",
                    self.now,
                    self.live_jobs()
                );
                self.unstall();
            }
        }
        // Everything the loop spent outside scheduling decisions is
        // event-path time (fluid advancement, queue churn, memory).
        self.event_wall = loop_t0.elapsed().saturating_sub(self.sched_wall);
        if debug {
            eprintln!(
                "event-loop: popped={popped} stale_wakes={stale_wakes} group_slots={}",
                self.groups.len()
            );
        }
    }

    /// Last-resort progress: re-run the placement machinery.
    fn unstall(&mut self) {
        match self.cfg.scheduler {
            SchedulerKind::Harmony | SchedulerKind::Oracle => {
                self.reschedule_because(ReschedReason::Unstall);
                // Anything still waiting (e.g. never profiled because no
                // group existed) re-enters profiling.
                let waiting: Vec<usize> = (0..self.jobs.len())
                    .filter(|&j| self.jobs[j].state == SimJobState::Waiting)
                    .collect();
                for j in waiting {
                    self.place_for_profiling(j);
                }
            }
            SchedulerKind::Isolated => self.isolated_admit(),
            SchedulerKind::Naive { .. } => self.naive_form_groups(),
        }
    }

    // ----------------------------------------------------------------
    // Arrival handling.
    // ----------------------------------------------------------------

    fn on_arrival(&mut self, j: usize) {
        // A deferred re-offer can trail a job the run already
        // terminated (runaway cutoff, plan-driven abort): drop it.
        if !self.jobs[j].is_live() {
            return;
        }
        if self.admission.is_some() && !self.admission_decide(j) {
            return; // deferred (re-offer queued) or rejected (terminal)
        }
        match self.cfg.scheduler {
            SchedulerKind::Harmony | SchedulerKind::Oracle => self.place_for_profiling(j),
            SchedulerKind::Isolated => {
                self.isolated_queue.push_back(j);
                self.isolated_admit();
            }
            SchedulerKind::Naive { .. } => {
                if !self.naive_form_scheduled {
                    self.naive_form_scheduled = true;
                    self.push_event(self.now + 1.0, EventKind::NaiveForm);
                }
            }
        }
    }

    /// Consults the admission policy about one offer of job `j`.
    /// Returns `true` when the job should dispatch now; `false` when
    /// the offer was deferred (a re-offer event is queued) or rejected
    /// (the job is terminal `Failed` with its `rejected` flag set).
    fn admission_decide(&mut self, j: usize) -> bool {
        // The policy is boxed state owned by the driver; take it out so
        // pricing and the decision can borrow `self` freely.
        let mut policy = self.admission.take().expect("caller checked presence");
        let marginal = if policy.needs_pricing() {
            Some(self.price_arrival(j))
        } else {
            None
        };
        let deferrals = self.jobs[j].deferrals;
        let ctx = AdmissionContext {
            now: self.now,
            machines: self.cfg.machines.saturating_sub(self.machines_lost),
            free_machines: self.free_machines,
            backlog: self.admission_backlog(j),
            deferrals,
            marginal_utility: marginal,
            spec: &self.jobs[j].spec,
        };
        let decision = policy.decide(&ctx);
        self.admission = Some(policy);
        let wait = (self.now - self.jobs[j].arrival).max(0.0);
        match decision {
            AdmissionDecision::Admit => {
                self.admission_stats.admit(wait);
                true
            }
            AdmissionDecision::Defer if deferrals >= self.cfg.admission_max_deferrals => {
                // Starvation guard: the driver overrides the policy
                // once the deferral budget is spent, bounding queue
                // wait at roughly `max_deferrals × reoffer_secs`.
                self.admission_stats.admit_forced(wait);
                true
            }
            AdmissionDecision::Defer => {
                self.jobs[j].deferrals += 1;
                self.admission_stats.defer();
                self.push_event(
                    self.now + self.cfg.admission_reoffer_secs,
                    EventKind::Arrival(j),
                );
                false
            }
            AdmissionDecision::Reject => {
                self.admission_stats.reject();
                self.jobs[j].rejected = true;
                self.set_terminal(j, SimJobState::Failed, self.now);
                false
            }
        }
    }

    /// Live jobs already admitted but not running — the scheduler's
    /// backlog as admission sees it, excluding the candidate itself
    /// (which is still `Waiting` while its offer is decided). The
    /// arrival-time filter matters: the driver pre-creates every job of
    /// the trace in `Waiting`, but jobs whose arrival lies in the
    /// future are not backlog.
    fn admission_backlog(&self, cand: usize) -> usize {
        self.jobs
            .iter()
            .enumerate()
            .filter(|&(i, job)| {
                i != cand
                    && job.arrival <= self.now
                    && matches!(
                        job.state,
                        SimJobState::Waiting | SimJobState::Profiled | SimJobState::Paused
                    )
            })
            .count()
    }

    /// Prices admitting job `j` right now: the marginal Eq. 4 score of
    /// the cluster with the candidate versus without it, over the warm
    /// profiles of live jobs plus an a-priori profile built from the
    /// candidate's spec ([`JobProfile::from_reference`] — the same
    /// construction the isolated baseline uses before profiling).
    /// Accounted as scheduler wall time but not as an invocation:
    /// pricing never places anything, so the canonical decision count
    /// stays comparable across admission arms.
    fn price_arrival(&mut self, j: usize) -> f64 {
        let machines = self.cfg.machines.saturating_sub(self.machines_lost);
        if machines == 0 {
            return 0.0;
        }
        let t0 = Instant::now();
        let mut ss = std::mem::take(&mut self.sched_scratch);
        ss.admission_profiles.clear();
        for (i, job) in self.jobs.iter().enumerate() {
            if i == j || !job.is_live() || !job.profile.is_warm() {
                continue;
            }
            ss.admission_profiles.push(job.profile.clone());
        }
        let spec = &self.jobs[j].spec;
        let mut cand =
            JobProfile::from_reference(JobId::new(j as u64), spec.comp_cost, spec.net_cost);
        cand.set_memory_footprint(spec.input_bytes, spec.model_bytes);
        // The candidate goes last: `price_candidate` scores the job
        // sequence with and without its final profile.
        ss.admission_profiles.push(cand);
        let price = self.scheduler.price_candidate(
            &ss.admission_profiles,
            machines,
            &mut ss.admission_cache,
            &mut ss.admission_scratch,
        );
        self.sched_scratch = ss;
        self.sched_wall += t0.elapsed();
        price.marginal()
    }

    /// Places a new job for profiling (§IV-B1: "a job group with the
    /// smallest number of machines or a job group that is already
    /// profiling another new job").
    fn place_for_profiling(&mut self, j: usize) {
        self.jobs[j].state = SimJobState::Profiling;
        self.jobs[j].profiling_left = self.cfg.profile_iterations;

        // Prefer an existing profiling host with room.
        let host = self
            .alive_groups()
            .filter(|&g| {
                let grp = self.groups[g].as_ref().expect("alive");
                grp.profiling_host && grp.jobs.len() < self.cfg.profiling_group_jobs
            })
            .min_by_key(|&g| self.groups[g].as_ref().expect("alive").jobs.len());
        if let Some(g) = host {
            self.attach_job(g, j, true);
            return;
        }
        // Otherwise spin up a new profiling group from free machines.
        if self.free_machines > 0 {
            let m = self.cfg.profiling_group_machines.min(self.free_machines);
            let g = self.create_group(m, true, None, None);
            self.attach_job(g, j, true);
            return;
        }
        // No free machines: piggyback on the smallest group.
        if let Some(g) = self
            .alive_groups()
            .min_by_key(|&g| self.groups[g].as_ref().expect("alive").machines)
        {
            self.attach_job(g, j, true);
        }
        // Else: stay Waiting; the unstall guardrail will retry.
    }

    // ----------------------------------------------------------------
    // Group construction / teardown.
    // ----------------------------------------------------------------

    fn discipline(&self) -> (usize, usize) {
        if let Some(slots) = self.cfg.discipline_override {
            return slots;
        }
        match self.cfg.scheduler {
            SchedulerKind::Naive { .. } => (usize::MAX / 2, usize::MAX / 2),
            _ => (1, 2),
        }
    }

    fn create_group(
        &mut self,
        machines: u32,
        profiling_host: bool,
        predicted_iteration: Option<f64>,
        predicted_util: Option<(f64, f64)>,
    ) -> usize {
        assert!(machines <= self.free_machines, "machine over-allocation");
        self.free_machines -= machines;
        let id = self.groups.len();
        let (cpu_slots, net_slots) = self.discipline();
        let beta = match self.cfg.scheduler {
            SchedulerKind::Naive { .. } => self.cfg.interference_beta,
            _ => 0.0,
        };
        let mut g = GroupSim::new(id, machines, cpu_slots, net_slots, beta, self.now);
        g.profiling_host = profiling_host;
        g.predicted_iteration = predicted_iteration;
        g.predicted_util = predicted_util;
        self.groups.push(Some(g));
        self.group_iter_stats.push(std::collections::HashMap::new());
        id
    }

    /// Adds a job to a group, charging an input-(re)load delay, and
    /// recomputes the group's memory plan. Returns `false` (reverting
    /// the job to a placeable state) when the group no longer exists —
    /// e.g. it was dissolved by an OOM kill while a batch of jobs was
    /// being attached.
    fn attach_job(&mut self, g: usize, j: usize, keep_state: bool) -> bool {
        self.attach_job_with_replan(g, j, keep_state, true)
    }

    /// [`Self::attach_job`] with the memory re-plan optionally
    /// deferred. Population loops in coalesced mode attach every member
    /// first and re-plan once ([`Self::finish_group_build`]): the
    /// per-attach re-plan is O(members), so building a k-member group
    /// through it costs O(k²) — the dominant event-path term once
    /// windows let groups grow into the thousands.
    fn attach_job_with_replan(
        &mut self,
        g: usize,
        j: usize,
        keep_state: bool,
        replan: bool,
    ) -> bool {
        let Some(machines) = self
            .groups
            .get(g)
            .and_then(|x| x.as_ref())
            .map(|grp| grp.machines)
        else {
            if self.jobs[j].is_live() {
                self.jobs[j].state = if self.jobs[j].profile.is_warm() {
                    SimJobState::Paused
                } else {
                    SimJobState::Waiting
                };
            }
            return false;
        };
        let mut load_bytes = (1.0 - self.jobs[j].alpha) * self.jobs[j].spec.input_bytes as f64;
        // A live-migrating job reloads its model checkpoint alongside
        // its input blocks (§IV-B4).
        if self.jobs[j].migrate_mark.is_some() {
            load_bytes += self.jobs[j].spec.model_bytes as f64;
        }
        let delay = load_bytes / (f64::from(machines) * self.cfg.machine.disk_bytes_per_sec);
        // A migration completes at whichever placement lands first —
        // the targeted `Migrate` pass or any cluster-wide reschedule
        // that got there before it (the other path then no-ops on its
        // staleness guards).
        if let Some(mark) = self.jobs[j].migrate_mark.take() {
            let latency = (self.now + delay - mark).max(0.0);
            self.migration_stats.finish(latency);
            // Open the settle window: no drift checks while the EWMA
            // converges on the post-move regime.
            self.jobs[j].drift_holdoff =
                self.jobs[j].iterations_done + u64::from(self.cfg.migration_settle_iters);
        }
        self.jobs[j].migrate_origin = None;
        // A job orphaned by a fault completes its recovery the moment it
        // is re-placed and reloaded somewhere.
        if let Some(mark) = self.jobs[j].recover_mark.take() {
            let latency = (self.now + delay - mark).max(0.0);
            self.recovery_stats.observe(latency);
            self.fault_log.record(
                self.now,
                "recovery",
                format!(
                    "job {} re-placed {latency:.0}s after fault",
                    self.jobs[j].spec.name
                ),
            );
        }
        if self.jobs[j].group.is_none() && self.jobs[j].is_live() {
            self.active_scheduled += 1;
        }
        let job = &mut self.jobs[j];
        job.group = Some(g);
        job.exec = ExecPhase::Idle {
            ready_at: self.now + delay,
        };
        job.pause_requested = false;
        job.last_comp_end = self.now + delay;
        if !keep_state {
            job.state = SimJobState::Running;
        }
        self.jobs[j].joined_iters = self.jobs[j].iterations_done;
        let mut grp = self.groups[g].take().expect("alive group");
        self.finalize_prediction_of(&mut grp);
        grp.jobs.push(j);
        if self.coalesce_active() && delay > 0.0 {
            grp.ready_heap
                .push(std::cmp::Reverse(((self.now + delay).to_bits(), j)));
        }
        grp.steady_at = grp.steady_at.max(self.now + delay);
        grp.steady_mark = None;
        self.groups[g] = Some(grp);
        if !replan {
            return true;
        }
        self.recompute_group_memory(g);
        self.bump_and_wake(g);
        // The OOM path inside recompute may have dissolved the group or
        // killed this very job. (The load-completion wake is armed by
        // `arm_wake`, which accounts for members' ready times.)
        if self.groups.get(g).and_then(|x| x.as_ref()).is_none() {
            return self.jobs[j].is_live();
        }
        let _ = delay;
        true
    }

    /// Completes a deferred-replan population loop: one memory re-plan
    /// and wake re-arm for the whole batch (dissolving the group if
    /// every candidate member turned out to be dead).
    fn finish_group_build(&mut self, g: usize) {
        let Some(grp) = self.groups.get(g).and_then(|x| x.as_ref()) else {
            return;
        };
        if grp.jobs.is_empty() {
            self.dissolve_group(g);
            return;
        }
        self.recompute_group_memory(g);
        self.bump_and_wake(g);
    }

    /// Removes a job from its group; dissolves the group when empty.
    fn detach_job(&mut self, j: usize) {
        self.detach_job_with_replan(j, true);
    }

    /// [`Self::detach_job`] with the memory re-plan optionally skipped.
    /// The pause-and-dissolve loop of a coalesced full pass detaches
    /// every member of a doomed group in turn; re-planning a k-member
    /// group after each one is O(k²) of work the dissolution throws
    /// away.
    fn detach_job_with_replan(&mut self, j: usize, replan: bool) {
        let Some(g) = self.jobs[j].group.take() else {
            return;
        };
        if self.jobs[j].is_live() {
            self.active_scheduled -= 1;
        }
        let mut owned = self.groups[g].take().expect("job group alive");
        self.finalize_prediction_of(&mut owned);
        self.groups[g] = Some(owned);
        let grp = self.groups[g].as_mut().expect("job group alive");
        grp.unqueue(j);
        if let ExecPhase::Running(phase) = self.jobs[j].exec {
            if phase.is_cpu() {
                grp.cpu.cancel_all_of(j);
            } else {
                grp.net.cancel_all_of(j);
            }
        }
        grp.jobs.retain(|&x| x != j);
        self.jobs[j].exec = ExecPhase::Idle { ready_at: self.now };
        if self.groups[g].as_ref().expect("alive").jobs.is_empty() {
            self.dissolve_group(g);
        } else if replan {
            self.recompute_group_memory(g);
            self.bump_and_wake(g);
        }
    }

    /// Emits the group's prediction-accuracy sample (once) — called on
    /// the first composition change and on dissolution, so the realized
    /// window matches the grouping the prediction was made for.
    fn finalize_prediction_of(&mut self, grp: &mut GroupSim) {
        let Some(pred_it) = grp.predicted_iteration.take() else {
            return;
        };
        let Some((pu_c, pu_n)) = grp.predicted_util.take() else {
            return;
        };
        // Measure from steady state (all founding members loaded) so
        // warm-up idleness is not charged against the prediction.
        let (cpu0, net0, t0) = grp
            .steady_mark
            .unwrap_or((grp.cpu_busy, grp.net_busy, self.now));
        let lifetime = self.now - t0;
        // Eq. 1 predicts the period at which *every* member completes an
        // iteration; faster members free-run ahead in the pipeline, so
        // the realized counterpart is the slowest member's mean period.
        let realized_iter = self.group_iter_stats[grp.id]
            .values()
            .filter(|s| s.count() >= 2)
            .map(OnlineStats::mean)
            .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))));
        if let Some(realized_iter) = realized_iter {
            if lifetime > 2.0 * pred_it {
                let w = self.cfg.scheduler_config.cpu_weight;
                let realized_u = w * ((grp.cpu_busy - cpu0) / lifetime)
                    + (1.0 - w) * ((grp.net_busy - net0) / lifetime);
                let predicted_u = w * pu_c + (1.0 - w) * pu_n;
                self.predictions.push(PredictionSample {
                    predicted_iteration: pred_it,
                    realized_iteration: realized_iter,
                    predicted_util: predicted_u,
                    realized_util: realized_u.max(1e-9),
                });
            }
        }
    }

    fn dissolve_group(&mut self, g: usize) {
        // Advance to now so busy integrals are complete (completions
        // surfacing in this final slice are moot — the group is gone).
        let grp = self.groups[g].as_mut().expect("alive group");
        let dt = self.now - grp.last_advance;
        if dt > 0.0 {
            let used_c = grp.cpu.advance_into(dt, &mut self.scratch_done);
            let used_n = grp.net.advance_into(dt, &mut self.scratch_done);
            self.scratch_done.clear();
            grp.cpu_busy += used_c;
            grp.net_busy += used_n;
            grp.last_advance = self.now;
        }
        let mut grp = self.groups[g].take().expect("alive group");
        self.finalize_prediction_of(&mut grp);
        self.free_machines += grp.machines;
        let mf = f64::from(grp.machines);
        self.cpu_busy_total += grp.cpu_busy * mf;
        self.net_busy_total += grp.net_busy * mf;
    }

    /// Pauses and detaches every member of `g` in one sweep, then
    /// dissolves it. Equivalent to detaching member-by-member, but the
    /// per-member `unqueue` / `jobs.retain` scans make that O(k²) for
    /// a k-member group — coalesced full passes tear down every
    /// involved group on each flush, so they route through here.
    fn teardown_group(&mut self, g: usize) {
        let Some(mut grp) = self.groups.get_mut(g).and_then(Option::take) else {
            return;
        };
        self.finalize_prediction_of(&mut grp);
        let members = std::mem::take(&mut grp.jobs);
        for &j in &members {
            if self.jobs[j].is_live() {
                self.jobs[j].state = SimJobState::Paused;
                self.active_scheduled -= 1;
            }
            self.jobs[j].group = None;
            if let ExecPhase::Running(phase) = self.jobs[j].exec {
                if phase.is_cpu() {
                    grp.cpu.cancel_all_of(j);
                } else {
                    grp.net.cancel_all_of(j);
                }
            }
            self.jobs[j].exec = ExecPhase::Idle { ready_at: self.now };
        }
        grp.cpu_queue.clear();
        grp.net_queue.clear();
        self.groups[g] = Some(grp);
        self.dissolve_group(g);
    }

    /// Ids of alive groups, without materializing a vector. Callers
    /// that mutate the group table while iterating snapshot the ids
    /// into [`Self::scratch_groups`] first.
    fn alive_groups(&self) -> impl Iterator<Item = usize> + '_ {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(g, s)| s.as_ref().map(|_| g))
    }

    // ----------------------------------------------------------------
    // Memory management (§IV-C).
    // ----------------------------------------------------------------

    /// Fills `out` with the group members' current footprints (reuses
    /// the caller's buffer — the GC model consults this on every COMP
    /// dispatch).
    fn footprints_into(&self, g: &GroupSim, out: &mut Vec<JobFootprint>) {
        out.clear();
        out.extend(g.jobs.iter().map(|&j| {
            let job = &self.jobs[j];
            JobFootprint {
                input_bytes: job.spec.input_bytes,
                model_bytes: job.spec.model_bytes,
                alpha: job.alpha,
                model_spilled: job.model_spilled,
                computing: matches!(job.exec, ExecPhase::Running(Phase::Comp)),
            }
        }));
    }

    /// Re-derives every member's α (and model-spill flag) for the
    /// group's current composition, killing jobs on unavoidable OOM.
    fn recompute_group_memory(&mut self, g: usize) {
        let mut members = std::mem::take(&mut self.scratch_members);
        let mut probe = std::mem::take(&mut self.scratch_fp);
        let mut inner = std::mem::take(&mut self.scratch_fp2);
        self.recompute_group_memory_with(g, &mut members, &mut probe, &mut inner);
        members.clear();
        probe.clear();
        inner.clear();
        self.scratch_members = members;
        self.scratch_fp = probe;
        self.scratch_fp2 = inner;
    }

    /// [`Self::recompute_group_memory`] against caller-provided scratch
    /// buffers (taken from the driver's arena), so the re-planning that
    /// runs on every composition change allocates nothing.
    fn recompute_group_memory_with(
        &mut self,
        g: usize,
        members: &mut Vec<usize>,
        probe: &mut Vec<JobFootprint>,
        inner: &mut Vec<JobFootprint>,
    ) {
        loop {
            let grp = self.groups[g].as_ref().expect("alive group");
            if grp.jobs.is_empty() {
                return;
            }
            let m = grp.machines;
            members.clear();
            members.extend_from_slice(&grp.jobs);
            // Baselines run on the same runtime as Harmony (§V-A: "we
            // implement their scheduling schemes on Harmony"), so model
            // spill is a property of the reload policy, not the
            // scheduler.
            let allow_model_spill = !matches!(self.cfg.reload, ReloadPolicy::None);
            // Probe with fresh (policy-independent) footprints.
            probe.clear();
            probe.extend(members.iter().map(|&j| JobFootprint {
                input_bytes: self.jobs[j].spec.input_bytes,
                model_bytes: self.jobs[j].spec.model_bytes,
                alpha: 0.0,
                model_spilled: false,
                computing: false,
            }));
            let (cpu_slots, _) = self.discipline();
            let concurrent = cpu_slots.min(members.len()).max(1);
            let fit = groupmem::classify_fit_in(probe, m, &self.mem, concurrent, inner);
            let oom = match (fit, self.cfg.reload) {
                (FitOutcome::OutOfMemory, _) => true,
                (FitOutcome::NeedsModelSpill, _) if !allow_model_spill => true,
                (FitOutcome::NeedsSpill | FitOutcome::NeedsModelSpill, ReloadPolicy::None) => true,
                (outcome, policy) => {
                    // Apply the policy.
                    let floor =
                        groupmem::static_fit_alpha_in(probe, m, &self.mem, 0.95, concurrent, inner);
                    let target = groupmem::static_fit_alpha_in(
                        probe,
                        m,
                        &self.mem,
                        self.cfg.static_fill_target,
                        concurrent,
                        inner,
                    );
                    for &j in members.iter() {
                        let job = &mut self.jobs[j];
                        job.model_spilled =
                            allow_model_spill && outcome == FitOutcome::NeedsModelSpill;
                        match policy {
                            ReloadPolicy::None => job.alpha = 0.0,
                            ReloadPolicy::Fixed(a) => job.alpha = a.max(0.0),
                            ReloadPolicy::StaticFit => {
                                job.alpha = target;
                                job.alpha_floor = floor;
                            }
                            ReloadPolicy::Adaptive => {
                                let _ = floor;
                                if job.alpha_ctl.is_none() {
                                    let start = AlphaController::initial_alpha(
                                        (job.spec.input_bytes as f64 * self.mem.expansion) as u64,
                                        job.spec.model_bytes,
                                        self.mem.capacity * u64::from(m)
                                            / members.len().max(1) as u64,
                                    )
                                    .max(floor);
                                    job.alpha_ctl =
                                        Some(AlphaController::new(start.clamp(0.0, 1.0), 0.05));
                                }
                                let a = job.alpha_ctl.as_ref().expect("just initialized").alpha();
                                job.alpha = a.clamp(0.0, 1.0);
                            }
                        }
                    }
                    // Adaptive: per-job floors, each assuming the other
                    // members keep their current ratios — small jobs get a
                    // zero floor while the heavyweights carry the spill.
                    if matches!(policy, ReloadPolicy::Adaptive) {
                        // Floors target the GC-free fill level: below it a
                        // job's cheap local win (fewer reloads) is paid by
                        // every co-located job through shared GC pressure,
                        // so the master does not let controllers go there.
                        // One COMP subtask's working set is live at any
                        // time under the subtask discipline — reserve the
                        // worst case up front.
                        let max_workspace: f64 = members
                            .iter()
                            .map(|&k| {
                                self.jobs[k].spec.input_bytes as f64
                                    * self.mem.expansion
                                    * self.mem.workspace_fraction
                            })
                            .fold(0.0, f64::max);
                        let budget =
                            self.mem.capacity as f64 * f64::from(m) * self.cfg.gc.threshold()
                                - max_workspace;
                        let models: f64 = members
                            .iter()
                            .map(|&k| {
                                if self.jobs[k].model_spilled {
                                    0.0
                                } else {
                                    self.jobs[k].spec.model_bytes as f64
                                }
                            })
                            .sum();
                        // Coalesced mode: one fold over the members,
                        // then each job's "others" is the total minus
                        // its own term. The per-job refold below is
                        // quadratic, which compounds to cubic per
                        // group build (one recompute per attach) and
                        // dominates the event path once groups grow
                        // past a few dozen members — but the
                        // subtraction reassociates the float sum, so
                        // the exact mode keeps the original op order
                        // and stays bit-identical with the flag off.
                        if self.coalesce_active() && members.len() >= COALESCE_BATCH_BUILD_MIN {
                            let resident_total: f64 = members
                                .iter()
                                .map(|&k| {
                                    (1.0 - self.jobs[k].alpha)
                                        * self.jobs[k].spec.input_bytes as f64
                                        * self.mem.expansion
                                })
                                .sum();
                            for &j in members.iter() {
                                let mine =
                                    self.jobs[j].spec.input_bytes as f64 * self.mem.expansion;
                                let others = resident_total - (1.0 - self.jobs[j].alpha) * mine;
                                let room = budget - models - others;
                                let floor_j = if mine > 0.0 {
                                    (1.0 - room / mine).clamp(0.0, 1.0)
                                } else {
                                    0.0
                                };
                                self.jobs[j].alpha_floor = floor_j;
                                self.jobs[j].alpha = self.jobs[j].alpha.max(floor_j);
                            }
                        } else {
                            for &j in members.iter() {
                                let others: f64 = members
                                    .iter()
                                    .filter(|&&k| k != j)
                                    .map(|&k| {
                                        (1.0 - self.jobs[k].alpha)
                                            * self.jobs[k].spec.input_bytes as f64
                                            * self.mem.expansion
                                    })
                                    .sum();
                                let mine =
                                    self.jobs[j].spec.input_bytes as f64 * self.mem.expansion;
                                let room = budget - models - others;
                                let floor_j = if mine > 0.0 {
                                    (1.0 - room / mine).clamp(0.0, 1.0)
                                } else {
                                    0.0
                                };
                                self.jobs[j].alpha_floor = floor_j;
                                self.jobs[j].alpha = self.jobs[j].alpha.max(floor_j);
                            }
                        }
                    }
                    // Fixed / None may still blow past capacity.
                    let grp = self.groups[g].as_ref().expect("alive");
                    self.footprints_into(grp, probe);
                    groupmem::usage_ratio(probe, m, &self.mem) > 1.0
                }
            };
            if !oom {
                self.refold_mem_aggregates(g);
                return;
            }
            // OOM: kill the largest-footprint member and retry.
            let victim = members
                .iter()
                .copied()
                .max_by_key(|&j| self.jobs[j].spec.input_bytes + self.jobs[j].spec.model_bytes)
                .expect("non-empty group");
            self.oom_events
                .push((self.now, self.jobs[victim].spec.name.clone()));
            self.set_terminal(victim, SimJobState::Failed, self.now);
            let grp = self.groups[g].as_mut().expect("alive");
            grp.unqueue(victim);
            grp.jobs.retain(|&x| x != victim);
            self.jobs[victim].group = None;
            if self.groups[g].as_ref().expect("alive").jobs.is_empty() {
                self.dissolve_group(g);
                return;
            }
        }
    }

    /// Refolds the group's cached memory aggregates from its current
    /// member list — called at every successful memory re-plan (which
    /// already runs on each membership change), so the GC probe on the
    /// per-dispatch hot path can price the resident set in O(1).
    fn refold_mem_aggregates(&mut self, g: usize) {
        let grp = self.groups[g].as_ref().expect("alive group");
        let mut base = 0.0;
        let mut alpha_in = 0.0;
        for &j in &grp.jobs {
            let job = &self.jobs[j];
            let input = job.spec.input_bytes as f64;
            base += (1.0 - job.alpha) * input * self.mem.expansion;
            if !job.model_spilled {
                base += job.spec.model_bytes as f64;
            }
            alpha_in += job.alpha * input;
        }
        let grp = self.groups[g].as_mut().expect("alive group");
        grp.mem_base_bytes = base;
        grp.alpha_input_bytes = alpha_in;
    }

    // ----------------------------------------------------------------
    // Subtask execution.
    // ----------------------------------------------------------------

    /// Single-pass fluid catch-up: advances both resources of an owned
    /// group to `self.now` (one drain, shared by the wake and the
    /// composition-change paths), accumulates busy integrals, and
    /// processes completions into `notes` — CPU completions first, then
    /// network, exactly as the former per-path drains did.
    fn catch_up(&mut self, grp: &mut GroupSim, notes: &mut Vec<Notify>) {
        let dt = self.now - grp.last_advance;
        grp.last_advance = self.now;
        if dt <= 0.0 {
            return;
        }
        let mut done = std::mem::take(&mut self.scratch_done);
        done.clear();
        let used_c = grp.cpu.advance_into(dt, &mut done);
        let used_n = grp.net.advance_into(dt, &mut done);
        grp.cpu_busy += used_c;
        grp.net_busy += used_n;
        for &key in &done {
            self.on_subtask_done(grp, key, notes);
        }
        done.clear();
        self.scratch_done = done;
    }

    /// Dispatches an owned group and hands it back to the table,
    /// dissolving it when it emptied or re-arming its wake otherwise.
    fn dispatch_and_rearm(&mut self, mut grp: GroupSim) {
        self.dispatch(&mut grp);
        let id = grp.id;
        let empty = grp.jobs.is_empty();
        self.groups[id] = Some(grp);
        if empty {
            self.dissolve_group(id);
        } else {
            self.arm_wake(id);
        }
    }

    /// Advances group `g` to `self.now`, processes completions into
    /// `notes` and dispatches, then re-arms the group's wake event.
    fn advance_group(&mut self, g: usize, notes: &mut Vec<Notify>) {
        let mut grp = self.groups[g].take().expect("alive group");
        self.catch_up(&mut grp, notes);
        if grp.steady_mark.is_none() && self.now >= grp.steady_at {
            grp.steady_mark = Some((grp.cpu_busy, grp.net_busy, self.now));
        }
        self.dispatch_and_rearm(grp);
    }

    /// Bumps the generation (invalidating stale wakes) and re-arms.
    fn bump_and_wake(&mut self, g: usize) {
        let Some(mut grp) = self.groups.get_mut(g).and_then(Option::take) else {
            return;
        };
        // Catch up the fluid clock before composition-driven rate
        // changes take effect. Completions discovered here are rare
        // (composition changes usually happen at completion
        // boundaries); the resulting notifications are deferred to the
        // event loop so the scheduler never re-enters itself
        // mid-mutation.
        let mut notes = std::mem::take(&mut self.scratch_notes_bump);
        self.catch_up(&mut grp, &mut notes);
        self.deferred.append(&mut notes);
        self.scratch_notes_bump = notes;
        grp.gen += 1;
        self.dispatch_and_rearm(grp);
    }

    fn arm_wake(&mut self, g: usize) {
        let Some(grp) = self.groups[g].as_ref() else {
            return;
        };
        let gen = grp.gen;
        // Next fluid-task completion...
        let mut next: Option<f64> = grp.time_to_next_event().map(|dt| self.now + dt.max(0.0));
        // ...or the earliest pending input-load completion: a member
        // still loading needs a wake at its ready time, and generation
        // bumps may have invalidated the wake pushed when it attached.
        if self.coalesce_active() {
            // The lazy ready-heap replaces the full member scan (the
            // scan runs on every event, so it is O(events × members)
            // across a run). Stale tops — the job left, finished its
            // load, or its ready time passed — are popped on sight;
            // a valid top is only peeked, so the wake re-arms until
            // the load event actually fires.
            let grp = self.groups[g].as_mut().expect("alive");
            let ready = loop {
                let Some(&std::cmp::Reverse((bits, j))) = grp.ready_heap.peek() else {
                    break None;
                };
                let ra = f64::from_bits(bits);
                let live = ra > self.now
                    && self.jobs[j].group == Some(grp.id)
                    && matches!(
                        self.jobs[j].exec,
                        ExecPhase::Idle { ready_at } if ready_at.to_bits() == bits
                    )
                    && matches!(
                        self.jobs[j].state,
                        SimJobState::Running | SimJobState::Profiling | SimJobState::Profiled
                    );
                if live {
                    break Some(ra);
                }
                grp.ready_heap.pop();
            };
            if let Some(ra) = ready {
                next = Some(next.map_or(ra, |t| t.min(ra)));
            }
        } else {
            for &j in &grp.jobs {
                if let ExecPhase::Idle { ready_at } = self.jobs[j].exec {
                    if ready_at > self.now
                        && matches!(
                            self.jobs[j].state,
                            SimJobState::Running | SimJobState::Profiling | SimJobState::Profiled
                        )
                    {
                        next = Some(next.map_or(ready_at, |t| t.min(ready_at)));
                    }
                }
            }
        }
        if let Some(t) = next {
            if self.cfg.fast_event_path {
                let grp = self.groups[g].as_mut().expect("alive");
                if grp.pending_wake == Some((gen, t)) {
                    // An identical wake is already sitting in the heap;
                    // processing the duplicate would be a no-op (same
                    // instant, same generation), so skip the enqueue.
                    return;
                }
                grp.pending_wake = Some((gen, t));
            }
            self.push_event(t, EventKind::Wake { group: g, gen });
        }
    }

    fn on_subtask_done(&mut self, grp: &mut GroupSim, key: TaskKey, notes: &mut Vec<Notify>) {
        let j = key.job;
        let ExecPhase::Running(phase) = self.jobs[j].exec else {
            return; // stale completion after a pause/cancel
        };
        if self.cfg.record_spans {
            self.spans.push(SubtaskSpan {
                job: j,
                job_name: self.jobs[j].spec.name.clone(),
                phase,
                group: grp.id,
                start: self.jobs[j].phase_start,
                end: self.now,
            });
        }
        // Profiles record the solo-equivalent duration (the subtask's
        // work at full rate): co-location stretching is a property of
        // the schedule, not of the job, and Eqs. 1-4 are stated in solo
        // subtask times.
        let solo = self.jobs[j].phase_solo;
        match phase {
            Phase::Pull => {
                self.jobs[j].iter_tnet += solo;
                self.jobs[j].exec = ExecPhase::Queued(Phase::Comp);
                grp.cpu_queue.push_back(j);
            }
            Phase::Comp => {
                self.jobs[j].iter_tcpu += solo;
                self.jobs[j].last_comp_end = self.now;
                self.jobs[j].exec = ExecPhase::Queued(Phase::Push);
                grp.net_queue.push_back(j);
            }
            Phase::Push => {
                self.jobs[j].iter_tnet += solo;
                self.complete_iteration(grp, j, notes);
            }
        }
    }

    fn complete_iteration(&mut self, grp: &mut GroupSim, j: usize, notes: &mut Vec<Notify>) {
        let m = grp.machines;
        let (tcpu, tnet) = (self.jobs[j].iter_tcpu, self.jobs[j].iter_tnet);
        self.jobs[j].iterations_done += 1;
        self.jobs[j].profile.observe_iteration(tcpu, tnet, m);
        let iter_wall = self.now - self.jobs[j].iter_start;
        self.jobs[j].last_iter_wall = iter_wall;
        self.iter_wall_stats.observe(iter_wall);
        // Skip each member's first in-group iteration (load warmup),
        // anchored at the iteration count recorded when it joined.
        let first_in_group = self.jobs[j].iterations_done <= self.jobs[j].joined_iters + 1;
        if !first_in_group {
            self.group_iter_stats[grp.id]
                .entry(j)
                .or_default()
                .observe(iter_wall);
        }
        // Hill-climbing α update. The cost signal is the job's own COMP
        // cost (base work + GC share + deserialization + disk-blocked
        // time) — the components α actually controls — smoothed over a
        // few iterations so one noisy sample cannot flip the climb
        // direction.
        if let ReloadPolicy::Adaptive = self.cfg.reload {
            self.jobs[j].alpha_cost_acc += tcpu;
            self.jobs[j].alpha_cost_n += 1;
            if self.jobs[j].alpha_cost_n >= 3 {
                let cost = self.jobs[j].alpha_cost_acc / f64::from(self.jobs[j].alpha_cost_n);
                self.jobs[j].alpha_cost_acc = 0.0;
                self.jobs[j].alpha_cost_n = 0;
                let floor = self.jobs[j].alpha_floor;
                if let Some(ctl) = self.jobs[j].alpha_ctl.as_mut() {
                    let a = ctl.observe(cost);
                    let old = self.jobs[j].alpha;
                    self.jobs[j].alpha = a.max(floor).min(1.0);
                    // Keep the group's cached memory aggregates in
                    // step with the climb; the next re-plan refolds
                    // them exactly, so incremental float drift never
                    // accumulates past one membership epoch.
                    let delta = self.jobs[j].alpha - old;
                    let input = self.jobs[j].spec.input_bytes as f64;
                    grp.mem_base_bytes -= delta * input * self.mem.expansion;
                    grp.alpha_input_bytes += delta * input;
                }
            }
        }
        if self.jobs[j].profiling_left > 0 {
            self.jobs[j].profiling_left -= 1;
            if self.jobs[j].profiling_left == 0 {
                notes.push(Notify::Profiled(j));
            }
        }
        if self.jobs[j].iterations_done >= self.jobs[j].total_iterations {
            self.set_terminal(j, SimJobState::Finished, self.now);
            notes.push(Notify::Finished {
                job: j,
                group: grp.id,
            });
            self.detach_from(grp, j);
        } else if self.jobs[j].pause_requested {
            self.jobs[j].pause_requested = false;
            self.jobs[j].state = SimJobState::Paused;
            self.detach_from(grp, j);
            // A live migration paused this job: write the model
            // checkpoint over the old group's disks, then re-place it
            // once the write lands.
            if self.jobs[j].migrate_mark.is_some() {
                let ckpt_bytes = self.jobs[j].spec.model_bytes as f64;
                let write = ckpt_bytes
                    / (f64::from(grp.machines.max(1)) * self.cfg.machine.disk_bytes_per_sec);
                self.push_event(self.now + write, EventKind::Migrate(j));
            }
        } else {
            // Closed-loop profiling: the fresh observation just folded
            // into the EWMAs; if the smoothed estimate now sits ≥ the
            // similarity threshold away from the basis this schedule
            // was computed with, the placement is stale (§IV-B4).
            // Clearing the basis here makes the trigger one-shot — it
            // re-arms only when the next decision re-pins it.
            if self.cfg.profile_feedback {
                if self.jobs[j].iterations_done < self.jobs[j].drift_holdoff {
                    // Post-migration settle window: the EWMA is still
                    // converging on the shift that caused the move.
                } else {
                    if self.jobs[j].drift_holdoff != 0 {
                        // Window just expired: re-pin the basis on the
                        // settled estimate so residual decay is not
                        // mistaken for a second shift.
                        self.jobs[j].drift_holdoff = 0;
                        self.jobs[j].profile.mark_scheduled();
                    }
                    let thr = self.cfg.scheduler_config.improvement_threshold;
                    if self.jobs[j]
                        .profile
                        .drift_from_basis()
                        .is_some_and(|d| d >= thr)
                    {
                        self.jobs[j].profile.clear_scheduled_basis();
                        notes.push(Notify::Drifted(j));
                    }
                }
            }
            self.jobs[j].exec = ExecPhase::Queued(Phase::Pull);
            grp.net_queue.push_back(j);
        }
    }

    /// Detaches `j` from an owned group (used inside `advance_group`
    /// where the group is taken out of `self.groups`).
    fn detach_from(&mut self, grp: &mut GroupSim, j: usize) {
        self.finalize_prediction_of(grp);
        grp.unqueue(j);
        grp.jobs.retain(|&x| x != j);
        if self.jobs[j].group.is_some() && self.jobs[j].is_live() {
            self.active_scheduled -= 1;
        }
        self.jobs[j].group = None;
        self.jobs[j].exec = ExecPhase::Idle { ready_at: self.now };
    }

    fn dispatch(&mut self, grp: &mut GroupSim) {
        // Promote ready Idle members into the PULL queue. The member
        // list and the queue are disjoint fields, so splitting the
        // borrow avoids snapshotting the membership.
        let GroupSim {
            jobs: members,
            net_queue,
            ..
        } = grp;
        for &j in members.iter() {
            let job = &mut self.jobs[j];
            if let ExecPhase::Idle { ready_at } = job.exec {
                if ready_at <= self.now + 1e-9
                    && matches!(
                        job.state,
                        SimJobState::Running | SimJobState::Profiling | SimJobState::Profiled
                    )
                {
                    job.exec = ExecPhase::Queued(Phase::Pull);
                    net_queue.push_back(j);
                }
            }
        }
        while grp.cpu.len() < grp.cpu_slots {
            let Some(j) = grp.cpu_queue.pop_front() else {
                break;
            };
            self.start_subtask(grp, j, Phase::Comp);
        }
        while grp.net.len() < grp.net_slots {
            let Some(j) = grp.net_queue.pop_front() else {
                break;
            };
            let ExecPhase::Queued(phase) = self.jobs[j].exec else {
                continue;
            };
            self.start_subtask(grp, j, phase);
        }
    }

    fn start_subtask(&mut self, grp: &mut GroupSim, j: usize, phase: Phase) {
        let m = grp.machines;
        let mf = f64::from(m);
        let disk_bw = self.cfg.machine.disk_bytes_per_sec;
        let spec_input = self.jobs[j].spec.input_bytes as f64;
        let spec_model = self.jobs[j].spec.model_bytes as f64;
        let alpha = self.jobs[j].alpha;
        let barrier = self.noise.barrier_factor(m);
        let (demand, work) = match phase {
            Phase::Comp => {
                self.jobs[j].exec = ExecPhase::Running(Phase::Comp);
                let mut base = self.jobs[j].spec.comp_cost / mf;
                // Scripted workload shift: the true COMP cost changes
                // mid-run, visible to the scheduler only through the
                // closed profiling loop.
                if let Some((at, factor)) = self.jobs[j].comp_shift {
                    if self.jobs[j].iterations_done >= at {
                        base *= factor;
                    }
                }
                let deser = alpha * spec_input / (mf * self.cfg.deser_bytes_per_sec);
                let gc = if self.coalesce_active()
                    && grp.cpu_slots == 1
                    && grp.jobs.len() >= COALESCE_BATCH_BUILD_MIN
                {
                    // One COMP at a time: the fluid was empty when this
                    // dispatch fired and every cancel path resets
                    // `exec`, so the computing set is exactly this job.
                    // Price the resident set from the group's cached
                    // aggregate instead of refolding every member —
                    // this probe runs once per COMP dispatch, and the
                    // fold made the event path scale with
                    // iterations × group size.
                    let bytes = grp.mem_base_bytes
                        + spec_input * self.mem.workspace_fraction * self.mem.expansion;
                    self.cfg
                        .gc
                        .slowdown(bytes / (mf * self.mem.capacity as f64))
                } else {
                    let mut fp = std::mem::take(&mut self.scratch_fp);
                    self.footprints_into(grp, &mut fp);
                    let gc = groupmem::gc_slowdown(&fp, m, &self.mem, &self.cfg.gc);
                    self.scratch_fp = fp;
                    gc
                };
                let gap = (self.now - self.jobs[j].last_comp_end).max(0.0);
                // Disk bandwidth is shared by the background preloads of
                // every co-located job. Reads spread over the whole group
                // round, so contention only bites when the group's
                // aggregate read demand exceeds what the disk can deliver
                // in one round: stretch this job's read by that
                // oversubscription ratio.
                let total_reads: f64 = if self.coalesce_active()
                    && grp.cpu_slots == 1
                    && grp.jobs.len() >= COALESCE_BATCH_BUILD_MIN
                {
                    grp.alpha_input_bytes / (mf * disk_bw)
                } else {
                    grp.jobs
                        .iter()
                        .map(|&k| {
                            self.jobs[k].alpha * self.jobs[k].spec.input_bytes as f64
                                / (mf * disk_bw)
                        })
                        .sum()
                };
                let round_est = if self.jobs[j].last_iter_wall > 0.0 {
                    self.jobs[j].last_iter_wall
                } else {
                    gap + self.jobs[j].spec.comp_cost / mf
                };
                let stretch = (total_reads / round_est.max(1e-9)).max(1.0);
                let read = alpha * spec_input * stretch / (mf * disk_bw);
                let blocked = (read - self.cfg.reload_overlap * gap).max(0.0);
                self.gc_seconds += (gc - 1.0) * (base + deser);
                self.alpha_stats.observe(alpha);
                (1.0, ((base + deser) * gc + blocked) * barrier)
            }
            Phase::Pull | Phase::Push => {
                self.jobs[j].exec = ExecPhase::Running(phase);
                if phase == Phase::Pull {
                    self.jobs[j].iter_start = self.now;
                    self.jobs[j].iter_tcpu = 0.0;
                    self.jobs[j].iter_tnet = 0.0;
                }
                let frac = if phase == Phase::Pull {
                    self.jobs[j].spec.pull_fraction
                } else {
                    1.0 - self.jobs[j].spec.pull_fraction
                };
                // DoP-dependent for all-reduce jobs, constant for PS.
                let mut base = self.jobs[j].spec.net_time_at(m) * frac;
                // A sparse job ships coordinate-sparse PUSH deltas:
                // wire time scales with density. PULL stays dense (the
                // server broadcasts the full model either way).
                if phase == Phase::Push {
                    if let Some(density) = self.jobs[j].push_density {
                        base *= density;
                    }
                }
                if self.jobs[j].model_spilled {
                    base += spec_model / (mf * disk_bw);
                }
                (self.cfg.net_demand, base * self.cfg.net_demand * barrier)
            }
        };
        // An injected straggler window stretches every subtask the group
        // dispatches while it is open (§VI).
        let work = work * grp.straggle_factor(self.now);
        self.jobs[j].phase_start = self.now;
        self.jobs[j].phase_solo = work / demand;
        let key = TaskKey {
            job: j,
            seq: self.jobs[j].next_seq(),
        };
        if phase.is_cpu() {
            grp.cpu.add(key, demand, work);
        } else {
            grp.net.add(key, demand, work);
        }
    }

    // ----------------------------------------------------------------
    // Failure injection (§VI).
    // ----------------------------------------------------------------

    /// A machine of one (deterministically chosen) group fails: its
    /// jobs roll back to their last per-epoch checkpoint and restart
    /// after an input-reload delay. "A machine/process failure may have
    /// an impact on all co-located jobs" (§VI).
    fn inject_failure(&mut self, n: u64) {
        let mut alive = std::mem::take(&mut self.scratch_groups);
        alive.clear();
        alive.extend(self.alive_groups());
        let victim = if alive.is_empty() {
            None
        } else {
            Some(alive[(n as usize * 7919) % alive.len()])
        };
        self.scratch_groups = alive;
        let Some(g) = victim else {
            return;
        };
        self.failures_injected += 1;
        let mut members = std::mem::take(&mut self.scratch_members);
        members.clear();
        members.extend_from_slice(&self.groups[g].as_ref().expect("alive").jobs);
        let machines = self.groups[g].as_ref().expect("alive").machines;
        for &j in members.iter() {
            // Roll back to the epoch checkpoint.
            let per_epoch = u64::from(self.jobs[j].spec.iters_per_epoch.max(1));
            self.jobs[j].iterations_done = (self.jobs[j].iterations_done / per_epoch) * per_epoch;
            // Cancel in-flight work and restart in place after reloading
            // the checkpoint + input.
            let grp = self.groups[g].as_mut().expect("alive");
            grp.unqueue(j);
            if let ExecPhase::Running(phase) = self.jobs[j].exec {
                if phase.is_cpu() {
                    grp.cpu.cancel_all_of(j);
                } else {
                    grp.net.cancel_all_of(j);
                }
            }
            let reload = ((1.0 - self.jobs[j].alpha) * self.jobs[j].spec.input_bytes as f64
                + self.jobs[j].spec.model_bytes as f64)
                / (f64::from(machines) * self.cfg.machine.disk_bytes_per_sec);
            self.jobs[j].exec = ExecPhase::Idle {
                ready_at: self.now + reload,
            };
            if self.coalesce_active() && reload > 0.0 {
                self.groups[g]
                    .as_mut()
                    .expect("alive")
                    .ready_heap
                    .push(std::cmp::Reverse(((self.now + reload).to_bits(), j)));
            }
        }
        members.clear();
        self.scratch_members = members;
        self.bump_and_wake(g);
    }

    // ----------------------------------------------------------------
    // Plan-driven fault injection (§VI).
    // ----------------------------------------------------------------

    /// Machines still usable (configured minus crashed).
    fn available_machines(&self) -> u32 {
        self.cfg.machines.saturating_sub(self.machines_lost)
    }

    /// Dispatches one scheduled fault from the configured plan.
    fn on_fault(&mut self, i: usize) {
        let Some(plan) = self.cfg.fault_plan.as_ref() else {
            return;
        };
        let Some(ev) = plan.events().get(i).copied() else {
            return;
        };
        let victim_seed = plan.victim_seed(i);
        match ev.kind {
            FaultKind::MachineCrash => self.inject_machine_crash(victim_seed),
            FaultKind::Slowdown {
                factor,
                duration_secs,
            } => self.inject_slowdown(victim_seed, factor, duration_secs),
            FaultKind::JobAbort => self.inject_job_abort(victim_seed),
        }
        debug_assert!(
            self.cluster_view().grouping.validate().is_ok(),
            "fault handling produced an invalid grouping: {:?}",
            self.cluster_view().grouping.validate()
        );
    }

    /// Rolls a job back to its last per-epoch checkpoint (§VI).
    fn rollback_to_checkpoint(&mut self, j: usize) {
        let per_epoch = u64::from(self.jobs[j].spec.iters_per_epoch.max(1));
        self.jobs[j].iterations_done = (self.jobs[j].iterations_done / per_epoch) * per_epoch;
    }

    /// One machine of one group dies permanently. The group shrinks to
    /// its survivors and restarts from checkpoints (local repair); when
    /// the machine was the group's last — or the regrouper judges the
    /// degraded grouping worth reshuffling — recovery escalates to
    /// rescheduling.
    fn inject_machine_crash(&mut self, victim_seed: u64) {
        // Prefer worker groups; fall back to profiling hosts; then to
        // the free pool.
        let mut candidates = std::mem::take(&mut self.scratch_groups);
        candidates.clear();
        candidates.extend(
            self.alive_groups()
                .filter(|&g| !self.groups[g].as_ref().expect("alive").profiling_host),
        );
        if candidates.is_empty() {
            candidates.extend(self.alive_groups());
        }
        let victim = candidates
            .get((victim_seed % candidates.len().max(1) as u64) as usize)
            .copied();
        self.scratch_groups = candidates;
        let Some(g) = victim else {
            if self.free_machines > 0 {
                self.free_machines -= 1;
                self.machines_lost += 1;
                self.failures_injected += 1;
                self.fault_log.record(
                    self.now,
                    "machine-crash",
                    "idle machine removed from the free pool",
                );
            }
            return;
        };
        self.machines_lost += 1;
        self.failures_injected += 1;
        let machines_before = self.groups[g].as_ref().expect("alive").machines;
        self.fault_log.record(
            self.now,
            "machine-crash",
            format!("group {g} lost 1 of {machines_before} machines"),
        );
        if machines_before == 1 {
            self.crash_dissolves_group(g);
        } else {
            self.crash_shrinks_group(g, machines_before - 1);
        }
    }

    /// Crash recovery when the victim group keeps at least one machine:
    /// members roll back and restart in place on the survivors, then
    /// the regrouper decides whether the shrunken grouping is worth
    /// escalating.
    fn crash_shrinks_group(&mut self, g: usize, survivors: u32) {
        self.groups[g].as_mut().expect("alive").machines = survivors;
        let mut members = std::mem::take(&mut self.scratch_members);
        members.clear();
        members.extend_from_slice(&self.groups[g].as_ref().expect("alive").jobs);
        for &j in members.iter() {
            self.rollback_to_checkpoint(j);
            let grp = self.groups[g].as_mut().expect("alive");
            grp.unqueue(j);
            if let ExecPhase::Running(phase) = self.jobs[j].exec {
                if phase.is_cpu() {
                    grp.cpu.cancel_all_of(j);
                } else {
                    grp.net.cancel_all_of(j);
                }
            }
            let reload = ((1.0 - self.jobs[j].alpha) * self.jobs[j].spec.input_bytes as f64
                + self.jobs[j].spec.model_bytes as f64)
                / (f64::from(survivors) * self.cfg.machine.disk_bytes_per_sec);
            self.jobs[j].exec = ExecPhase::Idle {
                ready_at: self.now + reload,
            };
            if self.coalesce_active() && reload > 0.0 {
                self.groups[g]
                    .as_mut()
                    .expect("alive")
                    .ready_heap
                    .push(std::cmp::Reverse(((self.now + reload).to_bits(), j)));
            }
            self.recovery_stats.observe(reload);
        }
        members.clear();
        self.scratch_members = members;
        // The survivors hold less memory; the plan must be re-derived
        // (this may OOM-kill a member or even dissolve the group).
        self.recompute_group_memory(g);
        if self.groups.get(g).and_then(|x| x.as_ref()).is_none() {
            self.fault_log.record(
                self.now,
                "recovery",
                format!("group {g} dissolved by memory pressure"),
            );
            return;
        }
        self.bump_and_wake(g);
        let harmony = matches!(
            self.cfg.scheduler,
            SchedulerKind::Harmony | SchedulerKind::Oracle
        );
        if harmony && self.groups.get(g).is_some_and(Option::is_some) {
            let view = self.cluster_view();
            let store = self.profile_store();
            let t0 = Instant::now();
            let decision = self
                .regrouper
                .on_machine_lost(&view, &store, GroupId::new(g as u32));
            self.sched_wall += t0.elapsed();
            self.sched_invocations += 1;
            let escalated = !matches!(decision, RegroupDecision::NoChange);
            self.apply_decision(decision);
            self.fault_log.record(
                self.now,
                "recovery",
                if escalated {
                    format!("group {g} repair escalated to partial reschedule")
                } else {
                    format!("group {g} repaired locally on {survivors} machines")
                },
            );
        } else {
            self.fault_log.record(
                self.now,
                "recovery",
                format!("group {g} restarted on {survivors} machines"),
            );
        }
    }

    /// Crash recovery when the victim group loses its only machine:
    /// members are orphaned (rolled back to checkpoints) and handed
    /// back to the placement machinery of the active scheduler.
    fn crash_dissolves_group(&mut self, g: usize) {
        let mut members = std::mem::take(&mut self.scratch_members);
        members.clear();
        members.extend_from_slice(&self.groups[g].as_ref().expect("alive").jobs);
        for &j in &members {
            self.rollback_to_checkpoint(j);
            self.jobs[j].recover_mark = Some(self.now);
            self.jobs[j].state = if self.jobs[j].profile.is_warm() {
                SimJobState::Paused
            } else {
                SimJobState::Waiting
            };
            self.detach_job(j);
        }
        // detach_job of the last member dissolved the group, returning
        // its machines to the free pool — minus the one that died.
        if self.groups.get(g).is_some_and(Option::is_some) {
            self.dissolve_group(g);
        }
        self.free_machines = self.free_machines.saturating_sub(1);
        match self.cfg.scheduler {
            SchedulerKind::Harmony | SchedulerKind::Oracle => {
                let cold: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&j| self.jobs[j].state == SimJobState::Waiting)
                    .collect();
                for j in cold {
                    self.place_for_profiling(j);
                }
                self.reschedule_if_waiting(ReschedReason::CrashRecovery);
            }
            SchedulerKind::Isolated => {
                for &j in &members {
                    if self.jobs[j].is_live() {
                        self.jobs[j].state = SimJobState::Waiting;
                        self.isolated_queue.push_back(j);
                    }
                }
                self.isolated_admit();
            }
            SchedulerKind::Naive { .. } => {
                for &j in &members {
                    if self.jobs[j].is_live() {
                        self.jobs[j].state = SimJobState::Waiting;
                    }
                }
                if !self.naive_form_scheduled {
                    self.naive_form_scheduled = true;
                    self.push_event(self.now + 1.0, EventKind::NaiveForm);
                }
            }
        }
        self.fault_log.record(
            self.now,
            "recovery",
            format!("group {g} dissolved; {} jobs re-queued", members.len()),
        );
        members.clear();
        self.scratch_members = members;
    }

    /// A transient straggler: one group's subtasks dispatched inside
    /// the window run `factor`× slower. Recovery is automatic at the
    /// window's end.
    fn inject_slowdown(&mut self, victim_seed: u64, factor: f64, duration: f64) {
        let mut candidates = std::mem::take(&mut self.scratch_groups);
        candidates.clear();
        candidates.extend(self.alive_groups());
        let victim = candidates
            .get((victim_seed % candidates.len().max(1) as u64) as usize)
            .copied();
        self.scratch_groups = candidates;
        let Some(g) = victim else {
            self.fault_log
                .record(self.now, "slowdown", "no running group to slow down");
            return;
        };
        let grp = self.groups[g].as_mut().expect("alive");
        grp.slow_factor = factor.max(1.0);
        grp.slow_until = self.now + duration;
        self.fault_log.record(
            self.now,
            "slowdown",
            format!("group {g} runs {factor:.2}x slower for {duration:.0}s"),
        );
        self.recovery_stats.observe(duration);
        self.fault_log.record(
            self.now + duration,
            "recovery",
            format!("group {g} straggler cleared"),
        );
    }

    /// One live job is aborted; its group is repaired through the same
    /// minimal-movement ladder a completion uses.
    fn inject_job_abort(&mut self, victim_seed: u64) {
        // Prefer jobs actively placed in a group; fall back to any
        // live job.
        let mut candidates: Vec<usize> = (0..self.jobs.len())
            .filter(|&j| self.jobs[j].is_live() && self.jobs[j].group.is_some())
            .collect();
        if candidates.is_empty() {
            candidates = (0..self.jobs.len())
                .filter(|&j| self.jobs[j].is_live())
                .collect();
        }
        if candidates.is_empty() {
            self.fault_log
                .record(self.now, "job-abort", "no live job to abort");
            return;
        }
        let j = candidates[(victim_seed % candidates.len() as u64) as usize];
        let g = self.jobs[j].group;
        self.jobs_aborted += 1;
        self.fault_log.record(
            self.now,
            "job-abort",
            format!(
                "job {} aborted after {} iterations",
                self.jobs[j].spec.name, self.jobs[j].iterations_done
            ),
        );
        let profile = self.jobs[j].profile.clone();
        self.set_terminal(j, SimJobState::Failed, self.now);
        self.jobs[j].aborted = true;
        self.detach_job(j);
        match self.cfg.scheduler {
            SchedulerKind::Harmony | SchedulerKind::Oracle => {
                let Some(g) = g else {
                    return;
                };
                if self.groups.get(g).is_some_and(Option::is_some) {
                    let dop = self.groups[g].as_ref().expect("alive").machines.max(1);
                    let (it, ratio) = if profile.is_warm() {
                        (profile.iter_time_at(dop), profile.comp_comm_ratio_at(dop))
                    } else {
                        (1.0, 1.0)
                    };
                    let view = self.cluster_view();
                    let store = self.profile_store();
                    let t0 = Instant::now();
                    let decision = self.regrouper.on_job_aborted(
                        &view,
                        &store,
                        it,
                        ratio,
                        GroupId::new(g as u32),
                    );
                    self.sched_wall += t0.elapsed();
                    self.sched_invocations += 1;
                    let repaired = !matches!(decision, RegroupDecision::NoChange);
                    self.apply_decision(decision);
                    if repaired {
                        self.fault_log.record(
                            self.now,
                            "recovery",
                            format!("group {g} back-filled after abort"),
                        );
                    }
                } else {
                    self.reschedule_if_waiting(ReschedReason::AbortRecovery);
                }
            }
            SchedulerKind::Isolated => self.isolated_admit(),
            SchedulerKind::Naive { .. } => {
                if !self.naive_form_scheduled {
                    self.naive_form_scheduled = true;
                    self.push_event(self.now + 1.0, EventKind::NaiveForm);
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // Utilization sampling.
    // ----------------------------------------------------------------

    fn sample_utilization(&mut self) {
        let total = f64::from(self.available_machines().max(1));
        let mut cpu = 0.0;
        let mut net = 0.0;
        for g in self.alive_groups() {
            let grp = self.groups[g].as_ref().expect("alive");
            let mf = f64::from(grp.machines);
            cpu += grp.cpu.usage() * mf;
            net += grp.net.usage() * mf;
        }
        self.cpu_tl.record(self.now, (cpu / total).min(1.0));
        self.net_tl.record(self.now, (net / total).min(1.0));
        let active = if self.cfg.fast_event_path {
            debug_assert_eq!(
                self.active_scheduled,
                self.jobs
                    .iter()
                    .filter(|j| j.group.is_some() && j.is_live())
                    .count(),
                "active-scheduled counter out of sync"
            );
            self.active_scheduled
        } else {
            self.jobs
                .iter()
                .filter(|j| j.group.is_some() && j.is_live())
                .count()
        };
        if active > 0 {
            self.concurrent_stats.observe(active as f64);
        }
    }

    // ----------------------------------------------------------------
    // Harmony scheduling integration.
    // ----------------------------------------------------------------

    fn handle_notifications(&mut self, notes: &mut Vec<Notify>) {
        for note in notes.drain(..) {
            match self.cfg.scheduler {
                SchedulerKind::Harmony | SchedulerKind::Oracle => match note {
                    Notify::Profiled(j) => self.on_profiled_harmony(j),
                    Notify::Drifted(j) => self.on_drifted_harmony(j),
                    Notify::Finished { job, group } => self.on_finished_harmony(job, group),
                },
                SchedulerKind::Isolated => {
                    if let Notify::Finished { .. } = note {
                        self.isolated_admit();
                    }
                }
                SchedulerKind::Naive { .. } => {
                    if let Notify::Finished { .. } = note {
                        if !self.naive_form_scheduled {
                            self.naive_form_scheduled = true;
                            self.push_event(self.now + 1.0, EventKind::NaiveForm);
                        }
                    }
                }
            }
        }
    }

    fn profile_store(&mut self) -> ProfileStore {
        let inject = self.cfg.error_injection;
        let mut store = ProfileStore::new();
        for (idx, job) in self.jobs.iter().enumerate() {
            if job.is_live() && job.profile.is_warm() {
                let mut p = job.profile.clone();
                if inject > 0.0 {
                    // Persistent per-job error (Figure 13a simulates a
                    // *model* with a given error level, so a job's bias
                    // must not average out across decisions).
                    let e1 = persistent_error(self.cfg.seed, idx as u64, 0, inject);
                    let e2 = persistent_error(self.cfg.seed, idx as u64, 1, inject);
                    let mut q = JobProfile::from_reference(
                        p.job(),
                        (p.tcpu_at(1) * (1.0 + e1)).max(1e-6),
                        (p.tnet() * (1.0 + e2)).max(1e-6),
                    );
                    q.set_memory_footprint(p.input_bytes(), p.model_bytes());
                    p = q;
                }
                store.insert(p);
            }
        }
        store
    }

    /// A group still hosting at least one actively-profiling member.
    fn group_is_actively_profiling(&self, g: usize) -> bool {
        self.groups[g].as_ref().is_some_and(|grp| {
            grp.profiling_host
                && grp
                    .jobs
                    .iter()
                    .any(|&j| self.jobs[j].state == SimJobState::Profiling)
        })
    }

    fn cluster_view(&self) -> ClusterView {
        let mut grouping = harmony_core::group::Grouping::new();
        let mut profiling_held = 0u32;
        for g in self.alive_groups() {
            let grp = self.groups[g].as_ref().expect("alive");
            if grp.profiling_host {
                profiling_held += grp.machines;
                continue;
            }
            let _ = &grp;
            let jobs: Vec<JobId> = grp.jobs.iter().map(|&j| JobId::new(j as u64)).collect();
            let machines: Vec<harmony_core::cluster::MachineId> = (0..grp.machines)
                .map(|i| harmony_core::cluster::MachineId::new(g as u32 * 10_000 + i))
                .collect();
            grouping.push(harmony_core::group::JobGroup::new(
                GroupId::new(g as u32),
                jobs,
                machines,
            ));
        }
        ClusterView {
            machines: self.available_machines().saturating_sub(profiling_held),
            grouping,
            profiled: self.jobs_in_state(SimJobState::Profiled),
            paused: self.jobs_in_state(SimJobState::Paused),
        }
    }

    fn jobs_in_state(&self, s: SimJobState) -> Vec<JobId> {
        (0..self.jobs.len())
            .filter(|&j| self.jobs[j].state == s)
            .map(|j| JobId::new(j as u64))
            .collect()
    }

    /// Whether the equivalence-relaxed coalesced machinery (windows,
    /// batch group builds, cached aggregates, ready-heap wakes) is in
    /// force. The flag must stay inert for schedulers whose finish
    /// path never consults the window (Isolated, Naive), so the fast
    /// paths gate on this, not on the raw flag.
    fn coalesce_active(&self) -> bool {
        self.cfg.coalesced_passes
            && matches!(
                self.cfg.scheduler,
                SchedulerKind::Harmony | SchedulerKind::Oracle
            )
    }

    fn waiting_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.state, SimJobState::Profiled | SimJobState::Paused))
            .count()
    }

    fn on_profiled_harmony(&mut self, j: usize) {
        // A job that was re-placed into a proper (non-profiling) group
        // before its profiling countdown elapsed is already where the
        // scheduler wants it: it just keeps running.
        if let Some(g) = self.jobs[j].group {
            let host = self.groups[g]
                .as_ref()
                .is_some_and(|grp| grp.profiling_host);
            if !host {
                self.jobs[j].state = SimJobState::Running;
                return;
            }
        }
        // The job keeps iterating in its profiling group ("in
        // background", §IV-B1) — it only moves when a decision places
        // it. Its state flips to Profiled so the scheduler sees it as
        // placeable.
        self.jobs[j].state = SimJobState::Profiled;

        let still_profiling = self
            .jobs
            .iter()
            .any(|job| job.state == SimJobState::Profiling);
        if !self.bootstrapped {
            if !still_profiling {
                self.bootstrapped = true;
                self.reschedule_because(ReschedReason::Bootstrap);
            }
            return;
        }
        let view = self.cluster_view();
        let store = self.profile_store();
        let t0 = Instant::now();
        let decision = self
            .regrouper
            .on_job_profiled(&view, &store, JobId::new(j as u64));
        self.sched_wall += t0.elapsed();
        self.sched_invocations += 1;
        self.apply_decision(decision);
        self.reschedule_on_backlog(ReschedReason::Profiled);
    }

    /// A running job's profile drifted from its scheduled basis: the
    /// whole placement was computed against stale estimates, so
    /// re-evaluate it. The regrouper's incremental paths
    /// (`on_job_profiled`) assume a *waiting* job and would
    /// double-attach a running one, hence the full reschedule — unless
    /// [`SimConfig::live_migration`] is on, in which case only the
    /// drifted job moves: it is paused at its next iteration boundary,
    /// checkpointed, and re-placed by a targeted pass
    /// ([`Self::on_migrate_ready`]) once the checkpoint lands.
    fn on_drifted_harmony(&mut self, j: usize) {
        if self.cfg.live_migration
            && self.jobs[j].is_live()
            && self.jobs[j].state == SimJobState::Running
            && self.jobs[j].group.is_some()
        {
            self.jobs[j].pause_requested = true;
            self.jobs[j].migrate_mark = Some(self.now);
            let g = self.jobs[j].group.expect("checked above");
            let created = self.groups[g].as_ref().expect("alive").created_at;
            self.jobs[j].migrate_origin = Some((g, created));
            self.migration_stats
                .begin(self.jobs[j].spec.model_bytes as f64);
            return;
        }
        self.reschedule_because(ReschedReason::Drift);
    }

    /// A migrating job's checkpoint finished writing: run a targeted
    /// scheduling pass for just this job (the same incremental path a
    /// freshly profiled job takes — it is detached and paused, exactly
    /// the waiting shape that path assumes). Stale events — the job was
    /// already re-placed by an interleaved reschedule, finished, or
    /// died — no-op.
    fn on_migrate_ready(&mut self, j: usize) {
        if !self.jobs[j].is_live()
            || self.jobs[j].state != SimJobState::Paused
            || self.jobs[j].group.is_some()
            || self.jobs[j].migrate_mark.is_none()
        {
            return;
        }
        let view = self.cluster_view();
        let store = self.profile_store();
        let t0 = Instant::now();
        let decision = self
            .regrouper
            .on_job_profiled(&view, &store, JobId::new(j as u64));
        self.sched_wall += t0.elapsed();
        self.sched_invocations += 1;
        // A targeted pass that sends the job straight back into the
        // group it drifted out of is a no-op migration: the measurements
        // that triggered the move condemned exactly that placement.
        // Escalate to a cluster-wide pass instead of bouncing back.
        let back_home = match &decision {
            RegroupDecision::AddToGroup { group, .. } => {
                let g = group.index() as usize;
                self.jobs[j].migrate_origin.is_some_and(|(og, oc)| {
                    og == g
                        && self
                            .groups
                            .get(g)
                            .and_then(|x| x.as_ref())
                            .is_some_and(|grp| grp.created_at == oc)
                })
            }
            _ => false,
        };
        if back_home {
            self.reschedule_because(ReschedReason::MigrationEscalation);
        } else {
            self.apply_decision(decision);
        }
        // The targeted pass may decline to place the job (NoChange);
        // escalate to a cluster-wide pass rather than strand it.
        if self.jobs[j].is_live() && self.jobs[j].group.is_none() {
            self.reschedule_because(ReschedReason::MigrationEscalation);
        }
    }

    fn on_finished_harmony(&mut self, j: usize, g: usize) {
        if self.cfg.coalesced_passes {
            self.on_finished_coalesced(j, g);
            return;
        }
        // The job was already detached inside complete_iteration; the
        // group may have dissolved if it was the last member.
        if self.groups.get(g).is_none_or(|x| x.is_none()) {
            self.reschedule_if_waiting(ReschedReason::Finished);
            return;
        }
        self.finished_replacement_decision(j, g);
        self.reschedule_on_backlog(ReschedReason::Finished);
    }

    /// The targeted per-finish decision (shared by the exact and the
    /// coalesced arm): ask the regrouper to backfill the finished
    /// job's slot in its still-alive group.
    fn finished_replacement_decision(&mut self, j: usize, g: usize) {
        let dop = self.groups[g].as_ref().expect("alive").machines.max(1);
        let profile = &self.jobs[j].profile;
        let (it, ratio) = if profile.is_warm() {
            (profile.iter_time_at(dop), profile.comp_comm_ratio_at(dop))
        } else {
            (1.0, 1.0)
        };
        let view = self.cluster_view();
        let store = self.profile_store();
        let t0 = Instant::now();
        let decision =
            self.regrouper
                .on_job_finished(&view, &store, it, ratio, GroupId::new(g as u32));
        self.sched_wall += t0.elapsed();
        self.sched_invocations += 1;
        self.apply_decision(decision);
    }

    fn apply_decision(&mut self, decision: RegroupDecision) {
        match decision {
            RegroupDecision::NoChange => {}
            RegroupDecision::AddToGroup { job, group } => {
                let j = job.index() as usize;
                let g = group.index() as usize;
                if self.groups.get(g).is_some_and(Option::is_some) {
                    self.detach_job(j);
                    self.jobs[j].state = SimJobState::Running;
                    self.attach_job(g, j, false);
                    if self.cfg.profile_feedback {
                        self.jobs[j].profile.mark_scheduled();
                    }
                    self.record_snapshot();
                }
            }
            RegroupDecision::ReplaceFinished { group, add } => {
                let g = group.index() as usize;
                if self.groups.get(g).is_some_and(Option::is_some) {
                    for job in add {
                        let j = job.index() as usize;
                        self.detach_job(j);
                        self.jobs[j].state = SimJobState::Running;
                        self.attach_job(g, j, false);
                        if self.cfg.profile_feedback {
                            self.jobs[j].profile.mark_scheduled();
                        }
                    }
                    self.record_snapshot();
                }
            }
            RegroupDecision::PartialReschedule {
                involved_groups,
                outcome,
            } => {
                let sim_ids: Vec<usize> = involved_groups
                    .iter()
                    .map(|gid| gid.index() as usize)
                    .filter(|&g| self.groups.get(g).is_some_and(Option::is_some))
                    .collect();
                self.apply_outcome(&outcome, &sim_ids);
            }
        }
    }

    /// The coalesced twin of [`Self::on_finished_harmony`]
    /// ([`SimConfig::coalesced_passes`]): the cheap targeted
    /// replacement decision still runs on every finish whose group
    /// survives (so groups get backfilled exactly like the exact arm),
    /// but the *full pass* a finish used to mandate — on a crossed
    /// backlog threshold or a dissolved group with work waiting — is
    /// deferred into a window that flushes into ONE pass: at expiry,
    /// at the batch cap, or for free when any other full-pass trigger
    /// fires first. A finish that dissolved its group routes the freed
    /// machines to the best waiting jobs through the targeted release
    /// pass so capacity never idles behind the deferral.
    fn on_finished_coalesced(&mut self, j: usize, g: usize) {
        self.coalesced_finishes += 1;
        if self.groups.get(g).is_none_or(|x| x.is_none()) {
            if self.waiting_count() > 0 {
                if self.free_machines > 0 {
                    self.release_pass();
                }
                self.defer_finish_pass();
            }
            return;
        }
        if self.coalesce_opened.is_some() {
            // A flush is already pending, and a full pass subsumes
            // both the targeted backfill and the threshold pass this
            // finish would have run — the expensive per-finish
            // decision (O(jobs) store/view rebuild) collapses into
            // the one deferred pass. This skip is where the
            // finish-mandated floor actually breaks at scale.
            if self.waiting_count() > 0 {
                self.defer_finish_pass();
            }
            return;
        }
        self.finished_replacement_decision(j, g);
        if self.waiting_count() >= self.cfg.waiting_reschedule_threshold {
            self.defer_finish_pass();
        }
    }

    /// Accumulates one would-have-fired finish pass into the open
    /// coalescing window, opening one if none is pending.
    fn defer_finish_pass(&mut self) {
        if self.coalesce_opened.is_none() {
            self.coalesce_opened = Some(self.now);
            self.coalesce_batch = 0;
            self.coalesce_windows += 1;
            self.coalesce_gen += 1;
            let gen = self.coalesce_gen;
            self.push_event(
                self.now + self.cfg.coalesce_window,
                EventKind::FlushCoalesce(gen),
            );
        }
        self.coalesce_batch += 1;
        if self.coalesce_batch >= self.cfg.coalesce_max_batch {
            self.reschedule_because(ReschedReason::WindowFlush);
        }
    }

    /// A coalescing window expired. The generation check drops expiry
    /// events of windows that already flushed (batch cap, or another
    /// full-pass trigger subsuming the deferral).
    fn on_flush_coalesce(&mut self, gen: u64) {
        if self.coalesce_opened.is_some() && gen == self.coalesce_gen {
            self.reschedule_because(ReschedReason::WindowFlush);
        }
    }

    /// Closes an open coalescing window because a full pass is about
    /// to run: whatever pass fires now subsumes the deferred finish
    /// pass, so the window's pending flush becomes a stale no-op and
    /// the deferral's staleness is recorded. Free when the mode is
    /// off: the window is always closed.
    fn close_coalesce_window(&mut self) {
        if let Some(opened) = self.coalesce_opened.take() {
            self.coalesce_staleness.observe(self.now - opened);
            self.coalesce_batch = 0;
        }
    }

    /// Counts and runs a cluster-wide pass for `reason`: every full
    /// reschedule trigger goes through here, so the report's
    /// [`ReschedCounters`] show *why* passes fire — and any open
    /// coalescing window closes, subsumed by this pass.
    fn reschedule_because(&mut self, reason: ReschedReason) {
        self.close_coalesce_window();
        self.resched_reasons.bump(reason);
        self.full_reschedule();
    }

    /// The recurring "work is waiting, re-run Algorithm 1" guard that
    /// used to be copy-pasted at every trigger site.
    fn reschedule_if_waiting(&mut self, reason: ReschedReason) {
        if self.waiting_count() > 0 {
            self.reschedule_because(reason);
        }
    }

    /// The backlog-threshold guard
    /// ([`SimConfig::waiting_reschedule_threshold`]): incremental
    /// decisions handle onesie arrivals, a crossed threshold escalates
    /// to a cluster-wide pass.
    fn reschedule_on_backlog(&mut self, reason: ReschedReason) {
        if self.waiting_count() >= self.cfg.waiting_reschedule_threshold {
            self.reschedule_because(reason);
        }
    }

    /// Runs Algorithm 1 (or the oracle) over all schedulable jobs and
    /// rebuilds every non-profiling group.
    fn full_reschedule(&mut self) {
        if self.cfg.fast_event_path {
            self.full_reschedule_reusing();
            return;
        }
        // Ordered J_profiled ∪ J_paused ∪ J_running, as in Algorithm 1;
        // within each class, shortest predicted iteration first, so the
        // incremental prefix favors quick jobs (the paper's preference
        // for shorter JCTs).
        let store = self.profile_store();
        let mut ordered: Vec<usize> = Vec::new();
        for state in [
            SimJobState::Profiled,
            SimJobState::Paused,
            SimJobState::Running,
        ] {
            let mut class: Vec<usize> = (0..self.jobs.len())
                .filter(|&j| self.jobs[j].state == state)
                .collect();
            class.sort_by(|&a, &b| {
                let key = |j: usize| {
                    let p = &self.jobs[j].profile;
                    if p.is_warm() {
                        p.iter_time_at(16) * self.jobs[j].iterations_left() as f64
                    } else {
                        f64::MAX
                    }
                };
                key(a).partial_cmp(&key(b)).expect("finite").then(a.cmp(&b))
            });
            ordered.extend(class);
        }
        let profiles: Vec<JobProfile> = ordered
            .iter()
            .filter_map(|&j| store.get(JobId::new(j as u64)).cloned())
            .collect();
        if profiles.is_empty() {
            return;
        }
        let profiling_held: u32 = self
            .alive_groups()
            .filter(|&g| self.group_is_actively_profiling(g))
            .map(|g| self.groups[g].as_ref().expect("alive").machines)
            .sum();
        let machines = self.available_machines().saturating_sub(profiling_held);
        if machines == 0 {
            return;
        }
        let t0 = Instant::now();
        let outcome = match self.cfg.scheduler {
            SchedulerKind::Oracle => {
                assert!(
                    profiles.len() <= OracleScheduler::MAX_JOBS,
                    "oracle runs are limited to {} jobs",
                    OracleScheduler::MAX_JOBS
                );
                self.oracle.schedule(&profiles, machines)
            }
            _ => self.scheduler.schedule(&profiles, machines),
        };
        self.sched_wall += t0.elapsed();
        self.sched_invocations += 1;
        let involved: Vec<usize> = self
            .alive_groups()
            .filter(|&g| !self.group_is_actively_profiling(g))
            .collect();
        self.apply_outcome(&outcome, &involved);
    }

    /// The fast-path twin of [`Self::full_reschedule`]: identical
    /// ordering, filtering and error-injection semantics, but fed from
    /// the persistent [`SimSchedScratch`] — no `ProfileStore` rebuild,
    /// no fresh ordering/profile vectors, and the core scheduler's
    /// derived arrays are carried across invocations
    /// (`schedule_reusing`).
    fn full_reschedule_reusing(&mut self) {
        let mut ss = std::mem::take(&mut self.sched_scratch);
        ss.profiles.clear();
        let inject = self.cfg.error_injection;
        // Ordered J_profiled ∪ J_paused ∪ J_running, as in Algorithm 1;
        // within each class, shortest predicted remaining time first.
        for state in [
            SimJobState::Profiled,
            SimJobState::Paused,
            SimJobState::Running,
        ] {
            ss.class.clear();
            ss.class
                .extend((0..self.jobs.len()).filter(|&j| self.jobs[j].state == state));
            ss.class.sort_by(|&a, &b| {
                let key = |j: usize| {
                    let p = &self.jobs[j].profile;
                    if p.is_warm() {
                        p.iter_time_at(16) * self.jobs[j].iterations_left() as f64
                    } else {
                        f64::MAX
                    }
                };
                key(a).partial_cmp(&key(b)).expect("finite").then(a.cmp(&b))
            });
            for &j in ss.class.iter() {
                // Same visibility rule as the store-backed path: the
                // scheduler sees warm profiles only (all three states
                // imply liveness, so warmth is the whole filter).
                let p = &self.jobs[j].profile;
                if !p.is_warm() {
                    continue;
                }
                if inject > 0.0 {
                    // Persistent per-job error (Figure 13a simulates a
                    // *model* with a given error level, so a job's bias
                    // must not average out across decisions).
                    let e1 = persistent_error(self.cfg.seed, j as u64, 0, inject);
                    let e2 = persistent_error(self.cfg.seed, j as u64, 1, inject);
                    let mut q = JobProfile::from_reference(
                        p.job(),
                        (p.tcpu_at(1) * (1.0 + e1)).max(1e-6),
                        (p.tnet() * (1.0 + e2)).max(1e-6),
                    );
                    q.set_memory_footprint(p.input_bytes(), p.model_bytes());
                    ss.profiles.push(q);
                } else {
                    ss.profiles.push(p.clone());
                }
            }
        }
        if ss.profiles.is_empty() {
            self.sched_scratch = ss;
            return;
        }
        let profiling_held: u32 = self
            .alive_groups()
            .filter(|&g| self.group_is_actively_profiling(g))
            .map(|g| self.groups[g].as_ref().expect("alive").machines)
            .sum();
        let machines = self.available_machines().saturating_sub(profiling_held);
        if machines == 0 {
            self.sched_scratch = ss;
            return;
        }
        let t0 = Instant::now();
        let outcome = match self.cfg.scheduler {
            SchedulerKind::Oracle => {
                assert!(
                    ss.profiles.len() <= OracleScheduler::MAX_JOBS,
                    "oracle runs are limited to {} jobs",
                    OracleScheduler::MAX_JOBS
                );
                self.oracle.schedule(&ss.profiles, machines)
            }
            // The dirty-set arm: unchanged profiles keep their cached
            // durations and sort ranks (bit-identical decisions, see
            // `schedule_reusing_incremental`).
            _ if self.cfg.incremental_resched => self.scheduler.schedule_reusing_incremental(
                &ss.profiles,
                machines,
                &mut ss.cache,
                &mut ss.scratch,
            ),
            _ => self.scheduler.schedule_reusing(
                &ss.profiles,
                machines,
                &mut ss.cache,
                &mut ss.scratch,
            ),
        };
        self.sched_wall += t0.elapsed();
        self.sched_invocations += 1;
        self.sched_scratch = ss;
        let involved: Vec<usize> = self
            .alive_groups()
            .filter(|&g| !self.group_is_actively_profiling(g))
            .collect();
        self.apply_outcome(&outcome, &involved);
    }

    /// The targeted release pass of the coalesced mode
    /// ([`SimConfig::coalesced_passes`]): hand the free pool to the
    /// best waiting (profiled/paused) jobs via
    /// [`Scheduler::schedule_release`] without touching any running
    /// group. Same ordering, warm-profile filter and error-injection
    /// semantics as the full pass, restricted to the waiting classes;
    /// fed from dedicated persistent buffers so the full pass's
    /// dirty-set cache never sees release-only churn. Harmony kind
    /// only — the oracle has no cheap targeted variant, so its
    /// coalesced mode is window-only.
    fn release_pass(&mut self) {
        if !matches!(self.cfg.scheduler, SchedulerKind::Harmony) {
            return;
        }
        let machines = self.free_machines;
        if machines == 0 {
            return;
        }
        let mut ss = std::mem::take(&mut self.sched_scratch);
        ss.release_profiles.clear();
        let inject = self.cfg.error_injection;
        for state in [SimJobState::Profiled, SimJobState::Paused] {
            ss.class.clear();
            ss.class
                .extend((0..self.jobs.len()).filter(|&j| self.jobs[j].state == state));
            ss.class.sort_by(|&a, &b| {
                let key = |j: usize| {
                    let p = &self.jobs[j].profile;
                    if p.is_warm() {
                        p.iter_time_at(16) * self.jobs[j].iterations_left() as f64
                    } else {
                        f64::MAX
                    }
                };
                key(a).partial_cmp(&key(b)).expect("finite").then(a.cmp(&b))
            });
            for &j in ss.class.iter() {
                let p = &self.jobs[j].profile;
                if !p.is_warm() {
                    continue;
                }
                if inject > 0.0 {
                    let e1 = persistent_error(self.cfg.seed, j as u64, 0, inject);
                    let e2 = persistent_error(self.cfg.seed, j as u64, 1, inject);
                    let mut q = JobProfile::from_reference(
                        p.job(),
                        (p.tcpu_at(1) * (1.0 + e1)).max(1e-6),
                        (p.tnet() * (1.0 + e2)).max(1e-6),
                    );
                    q.set_memory_footprint(p.input_bytes(), p.model_bytes());
                    ss.release_profiles.push(q);
                } else {
                    ss.release_profiles.push(p.clone());
                }
            }
        }
        if ss.release_profiles.is_empty() {
            self.sched_scratch = ss;
            return;
        }
        let t0 = Instant::now();
        let outcome = self.scheduler.schedule_release(
            &ss.release_profiles,
            machines,
            &mut ss.release_cache,
            &mut ss.release_scratch,
        );
        self.sched_wall += t0.elapsed();
        self.sched_invocations += 1;
        self.release_passes += 1;
        self.sched_scratch = ss;
        // No groups are involved: the pass only *adds* groups over the
        // free pool (`apply_outcome` skips anything it cannot fund).
        self.apply_outcome(&outcome, &[]);
    }

    /// Replaces `involved` groups with the groups of `outcome`.
    fn apply_outcome(&mut self, outcome: &ScheduleOutcome, involved: &[usize]) {
        // Remember old placement for migration-cost decisions.
        let involved: Vec<usize> = involved
            .iter()
            .copied()
            .filter(|&g| self.groups.get(g).is_some_and(Option::is_some))
            .collect();
        // One sorted signature per involved group, shared by all of its
        // members through an index — the per-job `sig.clone()` this
        // replaces dominated reschedule cost on large clusters.
        let mut sigs: Vec<Vec<usize>> = Vec::with_capacity(involved.len());
        let mut old_placement: std::collections::HashMap<usize, (usize, u32)> =
            std::collections::HashMap::new();
        for &g in &involved {
            let grp = self.groups[g].as_ref().expect("alive");
            let mut sig = grp.jobs.clone();
            sig.sort_unstable();
            let si = sigs.len();
            for &j in &grp.jobs {
                old_placement.insert(j, (si, grp.machines));
            }
            sigs.push(sig);
        }

        // Pause and dissolve the involved groups.
        let mut members = std::mem::take(&mut self.scratch_members);
        for &g in &involved {
            // One O(k) sweep instead of k O(k) detaches — but only
            // where the quadratic bites. Small groups keep the exact
            // arm's detach-by-detach history, so the tiny-workload
            // acceptance matrix diverges only through the window
            // timing itself, not through teardown bookkeeping.
            if self.coalesce_active()
                && self
                    .groups
                    .get(g)
                    .and_then(|x| x.as_ref())
                    .is_some_and(|grp| grp.jobs.len() >= COALESCE_BATCH_BUILD_MIN)
            {
                self.teardown_group(g);
                continue;
            }
            let Some(grp) = self.groups.get(g).and_then(|x| x.as_ref()) else {
                continue;
            };
            members.clear();
            members.extend_from_slice(&grp.jobs);
            for &j in &members {
                if self.jobs[j].is_live() {
                    self.jobs[j].state = SimJobState::Paused;
                }
                self.detach_job(j);
            }
            if self.groups.get(g).is_some_and(Option::is_some) {
                self.dissolve_group(g);
            }
        }
        members.clear();
        self.scratch_members = members;

        // Build the new groups.
        for (gi, core_group) in outcome.grouping.groups().iter().enumerate() {
            let m = core_group.dop();
            if m == 0 || m > self.free_machines {
                continue;
            }
            let predicted_it = outcome.predicted_iteration.get(gi).copied();
            let util = outcome.utilization;
            // Same size floor as the teardown sweep: defer the
            // per-attach re-plan only for groups big enough that the
            // O(k²) build actually costs something.
            let batch_build =
                self.coalesce_active() && core_group.jobs().len() >= COALESCE_BATCH_BUILD_MIN;
            // Predictions are armed only after the founding members are
            // attached, so population itself does not finalize them.
            let g = self.create_group(m, false, None, None);
            let mut new_sig: Vec<usize> = core_group
                .jobs()
                .iter()
                .map(|id| id.index() as usize)
                .collect();
            new_sig.sort_unstable();
            for job_id in core_group.jobs() {
                let j = job_id.index() as usize;
                if !self.jobs[j].is_live() {
                    continue;
                }
                let unchanged = old_placement
                    .get(&j)
                    .is_some_and(|&(si, om)| sigs[si] == new_sig && om == m);
                if !unchanged && old_placement.contains_key(&j) {
                    self.migrations += 1;
                }
                // The job may still sit in a profiling group.
                self.detach_job(j);
                self.jobs[j].state = SimJobState::Running;
                // Coalesced mode defers the per-attach memory re-plan
                // to one batch re-plan below; the exact mode keeps the
                // attach-by-attach plan (and its bit-exact history).
                self.attach_job_with_replan(g, j, false, !batch_build);
                // Pin the drift basis to the estimates this decision
                // was computed with (no-op while the profile is cold).
                if self.cfg.profile_feedback {
                    self.jobs[j].profile.mark_scheduled();
                }
            }
            if batch_build {
                self.finish_group_build(g);
            }
            if let Some(grp) = self.groups.get_mut(g).and_then(Option::as_mut) {
                grp.predicted_iteration = predicted_it;
                grp.predicted_util = Some((util.cpu, util.net));
            }
        }
        // Cold jobs that were piggybacking on a dissolved group never
        // finished profiling; the scheduler cannot see them (no warm
        // profile), so they must re-enter profiling placement or they
        // would wait forever.
        let cold_paused: Vec<usize> = (0..self.jobs.len())
            .filter(|&j| {
                self.jobs[j].state == SimJobState::Paused
                    && !self.jobs[j].profile.is_warm()
                    && self.jobs[j].is_live()
            })
            .collect();
        for j in cold_paused {
            self.place_for_profiling(j);
        }
        self.record_snapshot();
    }

    fn record_snapshot(&mut self) {
        let groups: Vec<(u32, usize)> = self
            .alive_groups()
            .filter(|&g| !self.groups[g].as_ref().expect("alive").profiling_host)
            .map(|g| {
                let grp = self.groups[g].as_ref().expect("alive");
                (grp.machines, grp.jobs.len())
            })
            .collect();
        if !groups.is_empty() {
            self.snapshots.push(GroupingSnapshot {
                time: self.now,
                groups,
            });
        }
    }

    // ----------------------------------------------------------------
    // Isolated baseline.
    // ----------------------------------------------------------------

    fn isolated_admit(&mut self) {
        while self.free_machines > 0 {
            let Some(&j) = self.isolated_queue.front() else {
                break;
            };
            let profile = JobProfile::from_reference(
                JobId::new(j as u64),
                self.jobs[j].spec.comp_cost,
                self.jobs[j].spec.net_cost,
            );
            // Target DoP: the CPU-utilization knee, capped by the whole
            // cluster; admit only once at least half of it is free so
            // jobs are not starved into degenerate 1-machine runs
            // (head-of-line FIFO, as dedicated-allocation systems do).
            let knee = self.cfg.fixed_dop.unwrap_or_else(|| {
                IsolatedScheduler::knee_dop_with_factor(
                    &profile,
                    self.cfg.machines,
                    self.cfg.isolated_knee_factor,
                )
            });
            let m = knee.min(self.free_machines).max(1);
            if m * 2 < knee {
                break;
            }
            self.isolated_queue.pop_front();
            let g = self.create_group(m, false, None, None);
            self.jobs[j].state = SimJobState::Running;
            self.attach_job(g, j, false);
        }
    }

    // ----------------------------------------------------------------
    // Naive co-location baseline.
    // ----------------------------------------------------------------

    fn naive_form_groups(&mut self) {
        let SchedulerKind::Naive {
            jobs_per_group,
            seed,
        } = self.cfg.scheduler
        else {
            return;
        };
        let mut pending: Vec<usize> = (0..self.jobs.len())
            .filter(|&j| {
                self.jobs[j].state == SimJobState::Waiting && self.jobs[j].arrival <= self.now
            })
            .collect();
        if pending.is_empty() {
            return;
        }
        // The seed picks one of the many possible packings (§V-A: the
        // evaluation samples placements and reports best/worst).
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next_rand = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..pending.len()).rev() {
            let k = (next_rand() % (i as u64 + 1)) as usize;
            pending.swap(i, k);
        }
        let mut changed = false;
        for j in pending {
            // Pack into an existing pool with room (fewest jobs first) —
            // the Gandiva-style packing with no model of fit quality.
            let pool = self
                .alive_groups()
                .filter(|&g| {
                    self.groups[g]
                        .as_ref()
                        .is_some_and(|grp| grp.jobs.len() < jobs_per_group)
                })
                .min_by_key(|&g| self.groups[g].as_ref().expect("alive").jobs.len());
            if let Some(g) = pool {
                self.jobs[j].state = SimJobState::Running;
                self.attach_job(g, j, false);
                changed = true;
                continue;
            }
            if self.free_machines == 0 {
                break;
            }
            // Open a new pool sized like a dedicated allocation for the
            // first job; the jobs packed on top of it contend.
            let profile = JobProfile::from_reference(
                JobId::new(j as u64),
                self.jobs[j].spec.comp_cost,
                self.jobs[j].spec.net_cost,
            );
            let knee = self.cfg.fixed_dop.unwrap_or_else(|| {
                IsolatedScheduler::knee_dop_with_factor(
                    &profile,
                    self.cfg.machines,
                    self.cfg.isolated_knee_factor,
                )
            });
            let m = knee.min(self.free_machines);
            let g = self.create_group(m, false, None, None);
            self.jobs[j].state = SimJobState::Running;
            self.attach_job(g, j, false);
            changed = true;
        }
        if changed {
            self.record_snapshot();
        }
    }

    // ----------------------------------------------------------------
    // Finalization.
    // ----------------------------------------------------------------

    fn finalize(mut self) -> RunReport {
        // A window still open at run end only records its staleness —
        // there is nothing left to flush into a pass.
        self.close_coalesce_window();
        // Fold surviving groups into the busy totals.
        for g in self.alive_groups().collect::<Vec<_>>() {
            self.dissolve_group(g);
        }
        let makespan = self
            .jobs
            .iter()
            .filter_map(|j| j.finish)
            .fold(0.0f64, f64::max);
        let jobs = self
            .jobs
            .iter()
            .map(|j| JobOutcome {
                name: j.spec.name.clone(),
                arrival: j.arrival,
                finish: j.finish.filter(|_| j.state == SimJobState::Finished),
                jct: j
                    .finish
                    .filter(|_| j.state == SimJobState::Finished)
                    .map(|f| f - j.arrival),
                iterations: j.iterations_done,
                failed: j.state == SimJobState::Failed,
                aborted: j.aborted,
                rejected: j.rejected,
                final_alpha: j.alpha,
            })
            .collect();
        let scheduler = match self.cfg.scheduler {
            SchedulerKind::Harmony => "harmony".to_string(),
            SchedulerKind::Oracle => "oracle".to_string(),
            SchedulerKind::Isolated => "isolated".to_string(),
            SchedulerKind::Naive { seed, .. } => format!("naive-{seed}"),
        };
        RunReport {
            scheduler,
            makespan,
            jobs,
            cpu_timeline: self.cpu_tl,
            net_timeline: self.net_tl,
            cpu_busy_machine_secs: self.cpu_busy_total,
            net_busy_machine_secs: self.net_busy_total,
            oom_events: self.oom_events,
            grouping_snapshots: self.snapshots,
            predictions: self.predictions,
            sched_invocations: self.sched_invocations,
            sched_wall: self.sched_wall,
            event_wall: self.event_wall,
            resched_reasons: self.resched_reasons,
            migrations: self.migrations,
            failures: self.failures_injected,
            machines_lost: self.machines_lost,
            jobs_aborted: self.jobs_aborted,
            fault_log: self.fault_log,
            recovery_latency: self.recovery_stats,
            live_migration: self.migration_stats,
            gc_seconds: self.gc_seconds,
            alpha_stats: self.alpha_stats,
            mean_group_iteration: self.iter_wall_stats.mean(),
            concurrent_jobs: self.concurrent_stats,
            spans: self.spans,
            coalesce_windows: self.coalesce_windows,
            coalesced_finishes: self.coalesced_finishes,
            release_passes: self.release_passes,
            coalesce_staleness: self.coalesce_staleness,
            admission: self.admission_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::job::{AppKind, JobSpec};

    pub(super) fn spec(name: &str, comp: f64, net: f64, input_gb: u64, model_gb: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            app: AppKind::Mlr,
            dataset: "synthetic".into(),
            input_bytes: input_gb << 30,
            model_bytes: model_gb << 30,
            comp_cost: comp,
            net_cost: net,
            sync: Default::default(),
            pull_fraction: 0.5,
            iters_per_epoch: 5,
            target_epochs: 4,
        }
    }

    pub(super) fn small_cfg(kind: SchedulerKind) -> SimConfig {
        SimConfig {
            machines: 8,
            scheduler: kind,
            reload: ReloadPolicy::Adaptive,
            straggler_cv: 0.0,
            utilization_sample_secs: 30.0,
            ..SimConfig::default()
        }
    }

    pub(super) fn two_complementary() -> Vec<JobSpec> {
        vec![
            spec("cpu-heavy", 400.0, 10.0, 4, 1),
            spec("net-heavy", 40.0, 50.0, 2, 1),
        ]
    }

    #[test]
    fn harmony_completes_all_jobs() {
        let r = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, 0.0],
        );
        assert_eq!(r.completed(), 2, "{:?}", r.oom_events);
        assert!(r.makespan > 0.0);
        for j in &r.jobs {
            assert_eq!(j.iterations, 20);
            assert!(j.jct.unwrap() > 0.0);
        }
    }

    #[test]
    fn isolated_completes_all_jobs() {
        let r = Driver::run(
            small_cfg(SchedulerKind::Isolated),
            two_complementary(),
            vec![0.0, 0.0],
        );
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn naive_completes_all_jobs() {
        let r = Driver::run(
            small_cfg(SchedulerKind::Naive {
                jobs_per_group: 2,
                seed: 1,
            }),
            two_complementary(),
            vec![0.0, 0.0],
        );
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn harmony_beats_isolated_on_complementary_mix() {
        // Several complementary jobs: multiplexing should cut makespan.
        let mut specs = Vec::new();
        for i in 0..4 {
            specs.push(spec(&format!("cpu{i}"), 320.0, 8.0, 2, 1));
            specs.push(spec(&format!("net{i}"), 24.0, 40.0, 1, 1));
        }
        let arrivals = vec![0.0; specs.len()];
        let h = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            specs.clone(),
            arrivals.clone(),
        );
        let i = Driver::run(small_cfg(SchedulerKind::Isolated), specs, arrivals);
        assert_eq!(h.completed(), 8);
        assert_eq!(i.completed(), 8);
        assert!(
            h.makespan < i.makespan,
            "harmony {} vs isolated {}",
            h.makespan,
            i.makespan
        );
    }

    #[test]
    fn oom_fires_without_spill() {
        // Input far beyond memory (x2.5 expansion) and no reload.
        let cfg = SimConfig {
            machines: 2,
            scheduler: SchedulerKind::Naive {
                jobs_per_group: 3,
                seed: 0,
            },
            reload: ReloadPolicy::None,
            ..SimConfig::default()
        };
        let specs = vec![
            spec("a", 50.0, 5.0, 40, 2),
            spec("b", 50.0, 5.0, 40, 2),
            spec("c", 50.0, 5.0, 40, 2),
        ];
        let r = Driver::run(cfg, specs, vec![0.0; 3]);
        assert!(!r.oom_events.is_empty(), "expected an OOM kill");
        assert!(r.completed() < 3);
    }

    #[test]
    fn spill_prevents_the_same_oom() {
        let cfg = SimConfig {
            machines: 2,
            scheduler: SchedulerKind::Naive {
                jobs_per_group: 3,
                seed: 0,
            },
            reload: ReloadPolicy::StaticFit,
            ..SimConfig::default()
        };
        let specs = vec![
            spec("a", 50.0, 5.0, 40, 2),
            spec("b", 50.0, 5.0, 40, 2),
            spec("c", 50.0, 5.0, 40, 2),
        ];
        let r = Driver::run(cfg, specs, vec![0.0; 3]);
        assert!(r.oom_events.is_empty(), "{:?}", r.oom_events);
        assert_eq!(r.completed(), 3);
    }

    #[test]
    fn runs_are_deterministic() {
        let specs = two_complementary();
        let a = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            specs.clone(),
            vec![0.0, 0.0],
        );
        let b = Driver::run(small_cfg(SchedulerKind::Harmony), specs, vec![0.0, 0.0]);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.mean_jct(), b.mean_jct());
    }

    #[test]
    fn arrivals_are_respected() {
        let specs = two_complementary();
        let r = Driver::run(small_cfg(SchedulerKind::Isolated), specs, vec![0.0, 500.0]);
        let late = &r.jobs[1];
        assert!(late.finish.unwrap() > 500.0);
        assert_eq!(late.arrival, 500.0);
    }

    #[test]
    fn utilization_samples_are_bounded() {
        let r = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, 0.0],
        );
        for p in r
            .cpu_timeline
            .points()
            .iter()
            .chain(r.net_timeline.points())
        {
            assert!((0.0..=1.0).contains(&p.value), "{p:?}");
        }
        assert!(r.avg_cpu_util(8) <= 1.0);
        assert!(r.avg_net_util(8) <= 1.0);
    }

    #[test]
    fn harmony_collects_predictions_with_small_error() {
        let mut specs = Vec::new();
        for i in 0..6 {
            specs.push(spec(&format!("c{i}"), 200.0 + 30.0 * i as f64, 10.0, 2, 1));
            specs.push(spec(&format!("n{i}"), 30.0, 25.0 + 5.0 * i as f64, 1, 1));
        }
        let arrivals = vec![0.0; specs.len()];
        let r = Driver::run(small_cfg(SchedulerKind::Harmony), specs, arrivals);
        assert!(!r.predictions.is_empty(), "no prediction samples collected");
        // This is a deliberately harsh small-scale setting (8 machines,
        // 20-iteration jobs, so measurement windows are only a few
        // iterations long); paper-scale accuracy (<10% on the 80-job
        // workload, Figure 13b) is asserted by the fig13 experiment.
        let err = r.mean_iteration_prediction_error();
        assert!(err < 0.35, "iteration prediction error {err}");
    }

    #[test]
    fn jobs_make_iteration_progress_monotonically() {
        let r = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, 0.0],
        );
        for j in &r.jobs {
            assert_eq!(j.iterations, 20, "{}", j.name);
        }
    }

    #[test]
    fn completions_trigger_regrouping_decisions() {
        // Jobs of mixed lengths: short ones finish first, forcing the
        // §IV-B4 completion path (replace or escalate) to run; the
        // grouping must keep evolving after the first completion.
        let mut specs = Vec::new();
        for i in 0..3 {
            specs.push(spec(&format!("short{i}"), 60.0, 6.0, 1, 1));
        }
        for i in 0..3 {
            specs.push(spec(&format!("long{i}"), 600.0, 20.0, 2, 1));
        }
        let arrivals = vec![0.0; specs.len()];
        let r = Driver::run(small_cfg(SchedulerKind::Harmony), specs, arrivals);
        assert_eq!(r.completed(), 6);
        // Decisions happened after the bootstrap one.
        assert!(
            r.grouping_snapshots.len() >= 2,
            "only {} snapshots",
            r.grouping_snapshots.len()
        );
        let first = r.grouping_snapshots.first().expect("non-empty").time;
        let last = r.grouping_snapshots.last().expect("non-empty").time;
        assert!(last > first, "no regrouping after bootstrap");
    }

    #[test]
    fn migrations_are_counted_when_groups_reshape() {
        let mut specs = Vec::new();
        for i in 0..4 {
            specs.push(spec(&format!("a{i}"), 150.0 + 40.0 * i as f64, 8.0, 1, 1));
            specs.push(spec(&format!("b{i}"), 30.0, 20.0 + 4.0 * i as f64, 1, 1));
        }
        let arrivals = vec![0.0; specs.len()];
        let r = Driver::run(small_cfg(SchedulerKind::Harmony), specs, arrivals);
        assert_eq!(r.completed(), 8);
        // With eight heterogeneous jobs on eight machines at least one
        // reshape moves a running job.
        assert!(r.migrations > 0);
    }

    #[test]
    fn live_migration_is_inert_without_drift() {
        // Without profile_feedback no drift ever fires, so turning
        // live_migration on must not change a single byte.
        let specs = two_complementary();
        let off = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            specs.clone(),
            vec![0.0, 0.0],
        );
        let cfg = SimConfig {
            live_migration: true,
            ..small_cfg(SchedulerKind::Harmony)
        };
        let on = Driver::run(cfg, specs, vec![0.0, 0.0]);
        assert_eq!(off.canonical_bytes(), on.canonical_bytes());
        assert_eq!(on.live_migration.started, 0);
        assert_eq!(on.live_migration.completed, 0);
    }

    #[test]
    fn sched_wall_clock_is_tracked() {
        let r = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, 0.0],
        );
        assert!(r.sched_invocations > 0);
        assert!(r.sched_wall > std::time::Duration::ZERO);
    }

    #[test]
    fn grouping_snapshots_recorded_for_harmony() {
        let r = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, 0.0],
        );
        assert!(!r.grouping_snapshots.is_empty());
        for s in &r.grouping_snapshots {
            for &(m, jobs) in &s.groups {
                assert!(m >= 1);
                assert!(jobs >= 1);
            }
        }
    }

    fn coalesced_cfg(window: f64, max_batch: usize) -> SimConfig {
        SimConfig {
            coalesced_passes: true,
            coalesce_window: window,
            coalesce_max_batch: max_batch,
            // Windows only open where the exact arm would have fired a
            // finish pass; a threshold of 1 makes every finish with a
            // backlog mandate one, so the window machinery is actually
            // exercised on these tiny workloads.
            waiting_reschedule_threshold: 1,
            ..small_cfg(SchedulerKind::Harmony)
        }
    }

    fn staggered_mix(n: usize) -> (Vec<JobSpec>, Vec<f64>) {
        let mut specs = Vec::new();
        let mut arrivals = Vec::new();
        for i in 0..n {
            specs.push(spec(
                &format!("c{i}"),
                120.0 + 30.0 * (i % 5) as f64,
                6.0 + 2.0 * (i % 3) as f64,
                1,
                1,
            ));
            arrivals.push(10.0 * (i % 4) as f64);
        }
        (specs, arrivals)
    }

    #[test]
    fn coalesced_mode_completes_and_counts_every_finish() {
        let (specs, arrivals) = staggered_mix(8);
        let n = specs.len();
        let r = Driver::run(coalesced_cfg(30.0, 32), specs, arrivals);
        assert_eq!(r.completed(), n);
        // Every finish routed through a window, none lost or doubled.
        assert_eq!(r.coalesced_finishes, n);
        assert!(r.coalesce_windows >= 1);
        assert_eq!(r.coalesce_windows, r.coalesce_staleness.count() as usize);
        assert!(r.resched_reasons.window_flush <= r.coalesce_windows);
        assert_eq!(r.resched_reasons.finished, 0);
    }

    #[test]
    fn coalesced_staleness_is_bounded_by_the_window() {
        let (specs, arrivals) = staggered_mix(10);
        for window in [5.0, 60.0, 600.0] {
            let r = Driver::run(coalesced_cfg(window, 32), specs.clone(), arrivals.clone());
            if let Some(max) = r.coalesce_staleness.max() {
                assert!(
                    max <= window + 1e-9,
                    "staleness {max} exceeds window {window}"
                );
            }
        }
    }

    #[test]
    fn coalesced_batch_cap_of_one_flushes_every_finish() {
        let (specs, arrivals) = staggered_mix(6);
        let n = specs.len();
        let r = Driver::run(coalesced_cfg(1e6, 1), specs, arrivals);
        assert_eq!(r.completed(), n);
        // Cap 1 degenerates to one flush per mandated finish: every
        // window flushes immediately with zero staleness.
        assert!(r.coalesce_windows >= 1);
        assert_eq!(r.resched_reasons.window_flush, r.coalesce_windows);
        assert_eq!(r.coalesce_staleness.max(), Some(0.0));
    }

    #[test]
    fn coalesced_flag_off_keeps_the_window_machinery_silent() {
        let (specs, arrivals) = staggered_mix(8);
        let r = Driver::run(small_cfg(SchedulerKind::Harmony), specs, arrivals);
        assert_eq!(r.coalesce_windows, 0);
        assert_eq!(r.coalesced_finishes, 0);
        assert_eq!(r.release_passes, 0);
        assert!(r.coalesce_staleness.is_empty());
        assert_eq!(r.resched_reasons.window_flush, 0);
    }

    #[test]
    fn coalesced_flag_is_inert_for_isolated_and_naive() {
        // The window machinery hangs off the Harmony finish handler;
        // the baselines must stay byte-identical with the flag on.
        for kind in [
            SchedulerKind::Isolated,
            SchedulerKind::Naive {
                jobs_per_group: 4,
                seed: 1,
            },
        ] {
            let (specs, arrivals) = staggered_mix(6);
            let off = Driver::run(small_cfg(kind.clone()), specs.clone(), arrivals.clone());
            let on = Driver::run(
                SimConfig {
                    coalesced_passes: true,
                    ..small_cfg(kind)
                },
                specs,
                arrivals,
            );
            assert_eq!(off.canonical_bytes(), on.canonical_bytes());
            assert_eq!(on.coalesce_windows, 0);
            assert_eq!(on.release_passes, 0);
        }
    }
}

#[cfg(test)]
mod coalesce_props {
    use super::*;
    use harmony_core::job::{AppKind, JobSpec};
    use proptest::prelude::*;

    fn spec(name: String, comp: f64, net: f64) -> JobSpec {
        JobSpec {
            name,
            app: AppKind::Mlr,
            dataset: "synthetic".into(),
            input_bytes: 1 << 30,
            model_bytes: 1 << 30,
            comp_cost: comp,
            net_cost: net,
            sync: Default::default(),
            pull_fraction: 0.5,
            iters_per_epoch: 5,
            target_epochs: 3,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Core accounting of the window state machine, under random
        /// workload shapes, windows and batch caps: no finish is lost
        /// or double-counted, every window records exactly one
        /// staleness sample bounded by the window length, and flush
        /// passes never outnumber windows (other triggers may subsume
        /// a window for free, never the reverse).
        #[test]
        fn window_accounting_invariants(
            njobs in 2usize..10,
            window in 1.0f64..600.0,
            max_batch in 1usize..8,
            spread in 0.0f64..40.0,
        ) {
            let mut specs = Vec::new();
            let mut arrivals = Vec::new();
            for i in 0..njobs {
                specs.push(spec(
                    format!("p{i}"),
                    80.0 + 35.0 * (i % 4) as f64,
                    5.0 + 3.0 * (i % 3) as f64,
                ));
                arrivals.push(spread * (i % 3) as f64);
            }
            let cfg = SimConfig {
                machines: 8,
                scheduler: SchedulerKind::Harmony,
                reload: ReloadPolicy::Adaptive,
                straggler_cv: 0.0,
                coalesced_passes: true,
                coalesce_window: window,
                coalesce_max_batch: max_batch,
                ..SimConfig::default()
            };
            let r = Driver::run(cfg, specs, arrivals);
            // No finish lost or double-counted.
            prop_assert_eq!(r.completed(), njobs);
            prop_assert_eq!(r.coalesced_finishes, njobs);
            // The exact finish trigger never fires in coalesced mode.
            prop_assert_eq!(r.resched_reasons.finished, 0);
            // One staleness sample per window, each bounded by the
            // window length (flush ordering is total: expiry, batch
            // cap and subsuming triggers all close before any later
            // pass runs).
            prop_assert_eq!(r.coalesce_windows, r.coalesce_staleness.count() as usize);
            if let Some(max) = r.coalesce_staleness.max() {
                prop_assert!(
                    max <= window + 1e-9,
                    "staleness {} exceeds window {}", max, window
                );
            }
            prop_assert!(r.resched_reasons.window_flush <= r.coalesce_windows);
            // Release passes only fire while a window exists.
            if r.coalesce_windows == 0 {
                prop_assert_eq!(r.release_passes, 0);
            }
        }

        /// Drift-style triggers (here: the profiled-backlog threshold
        /// crossing under staggered arrivals) subsume open windows:
        /// the run still completes, and subsumed windows show up as
        /// staleness samples without a matching flush pass.
        #[test]
        fn subsuming_triggers_interleave_cleanly(
            njobs in 4usize..12,
            window in 50.0f64..2000.0,
        ) {
            let mut specs = Vec::new();
            let mut arrivals = Vec::new();
            for i in 0..njobs {
                specs.push(spec(
                    format!("q{i}"),
                    100.0 + 25.0 * (i % 3) as f64,
                    4.0 + 2.0 * (i % 2) as f64,
                ));
                // Late stragglers keep profiling/backlog triggers
                // firing while earlier jobs finish into windows.
                arrivals.push(if i % 2 == 0 { 0.0 } else { 120.0 });
            }
            let cfg = SimConfig {
                machines: 8,
                scheduler: SchedulerKind::Harmony,
                reload: ReloadPolicy::Adaptive,
                straggler_cv: 0.0,
                waiting_reschedule_threshold: 2,
                coalesced_passes: true,
                coalesce_window: window,
                coalesce_max_batch: 64,
                ..SimConfig::default()
            };
            let r = Driver::run(cfg, specs, arrivals);
            prop_assert_eq!(r.completed(), njobs);
            prop_assert_eq!(r.coalesced_finishes, njobs);
            prop_assert_eq!(r.coalesce_windows, r.coalesce_staleness.count() as usize);
            prop_assert!(r.resched_reasons.window_flush <= r.coalesce_windows);
            if let Some(max) = r.coalesce_staleness.max() {
                prop_assert!(max <= window + 1e-9);
            }
        }
    }
}

#[cfg(test)]
mod try_run_validation {
    //! Malformed run requests come back as errors, not panics
    //! (regression for the old `assert_eq!` length check in `run`).

    use super::tests::{small_cfg, spec, two_complementary};
    use super::*;

    #[test]
    fn try_run_rejects_mismatched_arrival_lengths() {
        let err = Driver::try_run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0], // two specs, one arrival
        )
        .expect_err("length mismatch must be an error, not a panic");
        assert!(err.contains("arrival"), "unhelpful error: {err}");
        assert!(
            err.contains('2') && err.contains('1'),
            "counts absent: {err}"
        );
    }

    #[test]
    fn try_run_rejects_invalid_specs_and_arrival_times() {
        let mut bad = spec("broken", 0.0, 10.0, 1, 1); // zero COMP cost
        bad.comp_cost = 0.0;
        let err = Driver::try_run(small_cfg(SchedulerKind::Harmony), vec![bad], vec![0.0])
            .expect_err("invalid spec must be an error");
        assert!(err.contains("job 0 spec invalid"), "{err}");

        let err = Driver::try_run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, f64::NAN],
        )
        .expect_err("NaN arrival must be an error");
        assert!(err.contains("job 1 arrival"), "{err}");

        let err = Driver::try_run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, -5.0],
        )
        .expect_err("negative arrival must be an error");
        assert!(err.contains("job 1 arrival"), "{err}");
    }

    #[test]
    fn try_run_rejects_out_of_range_scripted_shifts() {
        let mut cfg = small_cfg(SchedulerKind::Harmony);
        cfg.comp_shifts = vec![crate::config::CompShift {
            job: 7,
            at_iteration: 1,
            factor: 2.0,
        }];
        let err = Driver::try_run(cfg, two_complementary(), vec![0.0, 0.0])
            .expect_err("out-of-range comp shift must be an error");
        assert!(err.contains("comp shift names job 7"), "{err}");

        let mut cfg = small_cfg(SchedulerKind::Harmony);
        cfg.push_densities = vec![crate::config::PushDensity {
            job: 9,
            density: 0.5,
        }];
        let err = Driver::try_run(cfg, two_complementary(), vec![0.0, 0.0])
            .expect_err("out-of-range push density must be an error");
        assert!(err.contains("push density names job 9"), "{err}");
    }

    #[test]
    fn try_run_matches_run_on_a_valid_request() {
        let a = Driver::run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, 0.0],
        );
        let b = Driver::try_run(
            small_cfg(SchedulerKind::Harmony),
            two_complementary(),
            vec![0.0, 0.0],
        )
        .expect("valid request");
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }
}
