//! Deterministic fault injection (§VI "Fault Tolerance").
//!
//! A [`FaultPlan`] is a seeded, pre-computed schedule of faults to
//! inject into a simulated run: machine crashes, transient machine
//! slowdowns (stragglers), and job aborts. The plan is fully determined
//! by its seed and generation parameters, so two runs with the same
//! plan produce byte-identical reports — the property the fault test
//! harness is built on.
//!
//! The plan only fixes *when* and *what kind* of fault fires; *which*
//! group or job is hit is resolved by the driver at injection time,
//! using the per-event [`FaultPlan::victim_seed`] hash against the set
//! of victims alive at that moment. This keeps plans valid for any
//! workload while remaining deterministic.

/// Deterministic splitmix64 step shared by the generator and the
/// victim-selection stream.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What kind of fault an event injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// One machine of one group dies. Its jobs roll back to their last
    /// per-epoch checkpoint; the master repairs the shrunken group
    /// locally or escalates to partial rescheduling.
    MachineCrash,
    /// A transient straggler: subtasks dispatched in the affected group
    /// run `factor`× slower for `duration_secs` of simulated time.
    Slowdown {
        /// Work multiplier (≥ 1) applied to subtasks started inside the
        /// window.
        factor: f64,
        /// Length of the slowdown window in simulated seconds.
        duration_secs: f64,
    },
    /// One live job is aborted (user kill / unrecoverable task error);
    /// its group is repaired like a completion would be.
    JobAbort,
}

impl FaultKind {
    /// Short machine-readable label used in event logs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::MachineCrash => "machine-crash",
            FaultKind::Slowdown { .. } => "slowdown",
            FaultKind::JobAbort => "job-abort",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time at which the fault fires.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Poisson-ish rates for [`FaultPlan::generate`]; a `None` MTBF
/// disables that fault class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Mean time between machine crashes (seconds).
    pub crash_mtbf_secs: Option<f64>,
    /// Mean time between slowdown onsets (seconds).
    pub slowdown_mtbf_secs: Option<f64>,
    /// Mean time between job aborts (seconds).
    pub abort_mtbf_secs: Option<f64>,
    /// Work multiplier of generated slowdowns.
    pub slowdown_factor: f64,
    /// Window length of generated slowdowns (seconds).
    pub slowdown_duration_secs: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        Self {
            crash_mtbf_secs: None,
            slowdown_mtbf_secs: None,
            abort_mtbf_secs: None,
            slowdown_factor: 2.0,
            slowdown_duration_secs: 120.0,
        }
    }
}

/// A deterministic, seeded schedule of faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan from explicit events (sorted by time; the sort is
    /// stable so equal-time events keep their given order).
    pub fn new(seed: u64, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        Self { seed, events }
    }

    /// Generates a plan by drawing exponential inter-fault gaps for
    /// each enabled fault class over `[0, horizon_secs)`, then merging
    /// the streams into one time-ordered schedule. Same seed and
    /// parameters → identical plan; different seeds → different
    /// schedules (with overwhelming probability).
    pub fn generate(seed: u64, horizon_secs: f64, rates: &FaultRates) -> Self {
        let mut events = Vec::new();
        let classes: [(u64, Option<f64>, FaultKind); 3] = [
            (0x01, rates.crash_mtbf_secs, FaultKind::MachineCrash),
            (
                0x02,
                rates.slowdown_mtbf_secs,
                FaultKind::Slowdown {
                    factor: rates.slowdown_factor,
                    duration_secs: rates.slowdown_duration_secs,
                },
            ),
            (0x03, rates.abort_mtbf_secs, FaultKind::JobAbort),
        ];
        for (salt, mtbf, kind) in classes {
            let Some(mtbf) = mtbf else { continue };
            if !mtbf.is_finite() || mtbf <= 0.0 || !horizon_secs.is_finite() {
                continue;
            }
            let mut state = seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
            let mut t = 0.0;
            loop {
                state = splitmix64(state);
                let u = (state as f64 / u64::MAX as f64).clamp(1e-9, 1.0 - 1e-9);
                t += -u.ln() * mtbf;
                if t >= horizon_secs {
                    break;
                }
                events.push(FaultEvent { at: t, kind });
            }
        }
        Self::new(seed, events)
    }

    /// Convenience: a plan with a single machine crash at `at`.
    pub fn single_crash(seed: u64, at: f64) -> Self {
        Self::new(
            seed,
            vec![FaultEvent {
                at,
                kind: FaultKind::MachineCrash,
            }],
        )
    }

    /// The seed the plan was built with (drives victim selection).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Deterministic victim-selection hash for event `index`; the
    /// driver reduces it modulo the number of candidates alive at
    /// injection time.
    pub fn victim_seed(&self, index: usize) -> u64 {
        splitmix64(
            self.seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(index as u64 ^ 0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Validates event times and kind parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.at.is_finite() || ev.at < 0.0 {
                return Err(format!(
                    "fault {i}: time {} is not a finite non-negative",
                    ev.at
                ));
            }
            if let FaultKind::Slowdown {
                factor,
                duration_secs,
            } = ev.kind
            {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(format!("fault {i}: slowdown factor {factor} must be >= 1"));
                }
                if !duration_secs.is_finite() || duration_secs <= 0.0 {
                    return Err(format!(
                        "fault {i}: slowdown duration {duration_secs} must be positive"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rates() -> FaultRates {
        FaultRates {
            crash_mtbf_secs: Some(500.0),
            slowdown_mtbf_secs: Some(700.0),
            abort_mtbf_secs: Some(900.0),
            ..FaultRates::default()
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultPlan::generate(42, 10_000.0, &all_rates());
        let b = FaultPlan::generate(42, 10_000.0, &all_rates());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::generate(1, 10_000.0, &all_rates());
        let b = FaultPlan::generate(2, 10_000.0, &all_rates());
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn events_are_time_sorted_within_horizon() {
        let p = FaultPlan::generate(7, 5_000.0, &all_rates());
        for w in p.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for ev in p.events() {
            assert!((0.0..5_000.0).contains(&ev.at));
        }
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn disabled_classes_generate_nothing() {
        let p = FaultPlan::generate(3, 100_000.0, &FaultRates::default());
        assert!(p.is_empty());
    }

    #[test]
    fn new_sorts_explicit_events() {
        let p = FaultPlan::new(
            0,
            vec![
                FaultEvent {
                    at: 30.0,
                    kind: FaultKind::JobAbort,
                },
                FaultEvent {
                    at: 10.0,
                    kind: FaultKind::MachineCrash,
                },
            ],
        );
        assert_eq!(p.events()[0].kind, FaultKind::MachineCrash);
        assert_eq!(p.events()[1].kind, FaultKind::JobAbort);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let bad_time = FaultPlan::new(
            0,
            vec![FaultEvent {
                at: -1.0,
                kind: FaultKind::MachineCrash,
            }],
        );
        assert!(bad_time.validate().is_err());

        let bad_factor = FaultPlan::new(
            0,
            vec![FaultEvent {
                at: 1.0,
                kind: FaultKind::Slowdown {
                    factor: 0.5,
                    duration_secs: 10.0,
                },
            }],
        );
        assert!(bad_factor.validate().is_err());

        let bad_duration = FaultPlan::new(
            0,
            vec![FaultEvent {
                at: 1.0,
                kind: FaultKind::Slowdown {
                    factor: 2.0,
                    duration_secs: 0.0,
                },
            }],
        );
        assert!(bad_duration.validate().is_err());
    }

    #[test]
    fn victim_seeds_vary_by_index_and_seed() {
        let p = FaultPlan::single_crash(5, 100.0);
        let q = FaultPlan::single_crash(6, 100.0);
        assert_ne!(p.victim_seed(0), p.victim_seed(1));
        assert_ne!(p.victim_seed(0), q.victim_seed(0));
    }
}
