//! Property suite for the open-loop workload generator.
//!
//! The generator's contract is determinism under the per-stream RNG
//! discipline: a fixed seed replays the exact trace bit-for-bit, gaps
//! are exponential with the configured mean, and a captured trace fed
//! to the closed-loop driver is indistinguishable from running the
//! generator open-loop under `AdmitAll`.

use harmony_sim::{AdmitAll, Driver, SchedulerKind, SimConfig, WorkloadGen, WorkloadGenConfig};
use harmony_trace::{workload_with, WorkloadParams};
use proptest::prelude::*;

fn templates(take: usize) -> Vec<harmony_core::JobSpec> {
    workload_with(WorkloadParams {
        hyper_params: 2,
        epoch_scale: 0.25,
        ..WorkloadParams::default()
    })
    .into_iter()
    .take(take)
    .collect()
}

fn gen(seed: u64, mean: f64, horizon: f64, max_jobs: usize) -> WorkloadGen {
    WorkloadGen::new(
        WorkloadGenConfig {
            seed,
            mean_interarrival_secs: mean,
            horizon_secs: horizon,
            max_jobs,
        },
        templates(6),
    )
    .expect("valid generator")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed, same parameters → bit-identical trace: every spec
    /// equal, every arrival equal to the bit.
    #[test]
    fn fixed_seed_replays_bit_identically(
        seed in 0u64..u64::MAX,
        mean in 1.0f64..500.0,
        max_jobs in 1usize..64,
    ) {
        let (s1, a1) = gen(seed, mean, 50_000.0, max_jobs).generate();
        let (s2, a2) = gen(seed, mean, 50_000.0, max_jobs).generate();
        prop_assert_eq!(s1, s2);
        let b1: Vec<u64> = a1.iter().map(|t| t.to_bits()).collect();
        let b2: Vec<u64> = a2.iter().map(|t| t.to_bits()).collect();
        prop_assert_eq!(b1, b2);
    }

    /// Every sampled arrival is finite, strictly positive,
    /// non-decreasing and inside the horizon; every emitted spec is a
    /// valid clone of some template with a unique name.
    #[test]
    fn samples_are_positive_finite_and_ordered(
        seed in 0u64..u64::MAX,
        mean in 0.5f64..1000.0,
        horizon in 10.0f64..100_000.0,
        max_jobs in 1usize..128,
    ) {
        let (specs, arrivals) = gen(seed, mean, horizon, max_jobs).generate();
        prop_assert_eq!(specs.len(), arrivals.len());
        prop_assert!(specs.len() <= max_jobs);
        let mut prev = 0.0f64;
        for &t in &arrivals {
            prop_assert!(t.is_finite() && t > 0.0);
            prop_assert!(t >= prev);
            prop_assert!(t <= horizon);
            prev = t;
        }
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        prop_assert_eq!(names.len(), n, "generated names must be unique");
        for s in &specs {
            prop_assert!(s.validate().is_ok());
        }
    }

    /// The closed-loop driver on a captured trace and the open-loop
    /// driver draining the same generator under `AdmitAll` produce the
    /// same report, byte for byte — on small random workloads.
    #[test]
    fn capture_equivalence_holds_on_random_traces(
        seed in 0u64..u64::MAX,
        mean in 20.0f64..400.0,
        max_jobs in 1usize..8,
    ) {
        let g = gen(seed, mean, 20_000.0, max_jobs);
        let (specs, arrivals) = g.clone().generate();
        let cfg = SimConfig {
            machines: 12,
            scheduler: SchedulerKind::Harmony,
            straggler_cv: 0.0,
            ..SimConfig::default()
        };
        let closed = Driver::run(cfg.clone(), specs, arrivals);
        let open = Driver::run_open_loop(cfg, g, Box::new(AdmitAll)).expect("valid run");
        prop_assert_eq!(open.canonical_bytes(), closed.canonical_bytes());
    }
}

/// With many samples the empirical mean interarrival gap converges on
/// the configured mean (law of large numbers; 10% tolerance at n in
/// the thousands).
#[test]
fn empirical_mean_converges_on_the_configured_mean() {
    for (seed, mean) in [(1u64, 30.0f64), (2, 120.0), (3, 400.0)] {
        let n = 4000usize;
        // A horizon generous enough that the cap, not the horizon,
        // ends the trace — otherwise truncation biases the mean.
        let (_, arrivals) = gen(seed, mean, mean * (n as f64) * 10.0, n).generate();
        assert_eq!(arrivals.len(), n);
        let mut prev = 0.0;
        let mut sum = 0.0;
        for &t in &arrivals {
            sum += t - prev;
            prev = t;
        }
        let empirical = sum / n as f64;
        let rel = (empirical - mean).abs() / mean;
        assert!(
            rel < 0.10,
            "seed {seed}: empirical mean {empirical:.1}s vs configured {mean:.1}s ({:.1}%)",
            rel * 100.0
        );
    }
}

/// The flagship capture-equivalence on a fixed, non-trivial trace: the
/// canonical bytes of `Driver::run` on the captured vectors equal
/// `run_open_loop` + `AdmitAll` on the same generator.
#[test]
fn capture_equivalence_on_a_fixed_trace() {
    let g = gen(4242, 80.0, 40_000.0, 20);
    let (specs, arrivals) = g.clone().generate();
    assert!(specs.len() >= 10, "fixture should exercise a real trace");
    let cfg = SimConfig {
        machines: 16,
        scheduler: SchedulerKind::Harmony,
        straggler_cv: 0.0,
        ..SimConfig::default()
    };
    let closed = Driver::run(cfg.clone(), specs, arrivals);
    let open = Driver::run_open_loop(cfg, g, Box::new(AdmitAll)).expect("valid run");
    assert_eq!(open.canonical_bytes(), closed.canonical_bytes());
    assert_eq!(open.completed(), open.jobs.len());
}
