//! Workload construction and job arrival processes for the Harmony
//! evaluation.
//!
//! The paper's base workload (§V-B) is "4 applications each with 2
//! datasets and 10 different hyper-parameters, resulting \[in\] the 80
//! different (app, dataset, hyper-params) tuples" of Table I, submitted
//! according to several arrival processes (§V-D): all at once, Poisson
//! with mean inter-arrival 0–8 minutes, and arrival spikes extracted
//! from the Google cluster traces.
//!
//! [`workload`] builds the 80 jobs with physically derived costs
//! (computation time from input size and per-app scan rates,
//! communication time from model size and the m4.2xlarge NIC), matching
//! the characteristic distributions of Figure 9. [`arrival`] provides
//! the arrival processes, with a bursty heavy-tailed process standing in
//! for the Google traces (which are not redistributable — see
//! DESIGN.md §2).

pub mod arrival;
pub mod faults;
pub mod workload;

pub use arrival::ArrivalProcess;
pub use workload::{base_workload, workload_with, WorkloadParams};
