//! Canned fault scenarios for the evaluation harness.
//!
//! The fault-tolerance experiments (§VI) need reproducible failure
//! schedules that pair with the workloads built here: a single crash in
//! the middle of the base workload, a "bad day" with recurring crashes
//! and stragglers, and a churn scenario where jobs are aborted as well.
//! Each helper returns a [`FaultPlan`] ready to drop into
//! [`harmony_sim::SimConfig::fault_plan`].

use harmony_sim::{FaultEvent, FaultKind, FaultPlan, FaultRates};

/// One machine crash at `at` seconds — the paper's single-failure
/// rollback experiment.
pub fn single_crash(seed: u64, at: f64) -> FaultPlan {
    FaultPlan::single_crash(seed, at)
}

/// Recurring crashes plus transient stragglers over `horizon_secs`:
/// crashes with the given MTBF and 2x slowdowns (2-minute windows) at
/// twice that rate.
pub fn bad_day(seed: u64, horizon_secs: f64, crash_mtbf_secs: f64) -> FaultPlan {
    let rates = FaultRates {
        crash_mtbf_secs: Some(crash_mtbf_secs),
        slowdown_mtbf_secs: Some(crash_mtbf_secs / 2.0),
        abort_mtbf_secs: None,
        ..FaultRates::default()
    };
    FaultPlan::generate(seed, horizon_secs, &rates)
}

/// Crashes, stragglers *and* user-driven job aborts — the churn
/// scenario exercising every recovery path at once.
pub fn churn(seed: u64, horizon_secs: f64, mtbf_secs: f64) -> FaultPlan {
    let rates = FaultRates {
        crash_mtbf_secs: Some(mtbf_secs),
        slowdown_mtbf_secs: Some(mtbf_secs),
        abort_mtbf_secs: Some(mtbf_secs),
        ..FaultRates::default()
    };
    FaultPlan::generate(seed, horizon_secs, &rates)
}

/// An explicit schedule from `(time, kind)` pairs — for tests that need
/// exact fault placement.
pub fn scripted(seed: u64, events: impl IntoIterator<Item = (f64, FaultKind)>) -> FaultPlan {
    FaultPlan::new(
        seed,
        events
            .into_iter()
            .map(|(at, kind)| FaultEvent { at, kind })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_crash_has_one_event() {
        let plan = single_crash(7, 500.0);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.events()[0].at, 500.0);
        assert_eq!(plan.events()[0].kind, FaultKind::MachineCrash);
    }

    #[test]
    fn bad_day_mixes_crashes_and_slowdowns() {
        let plan = bad_day(11, 100_000.0, 5_000.0);
        let crashes = plan
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::MachineCrash)
            .count();
        let slowdowns = plan.len() - crashes;
        assert!(crashes > 0, "no crashes generated");
        assert!(slowdowns > 0, "no slowdowns generated");
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn churn_covers_all_three_classes() {
        let plan = churn(3, 200_000.0, 8_000.0);
        let has = |want: &str| plan.events().iter().any(|e| e.kind.label() == want);
        assert!(has("machine-crash"));
        assert!(has("slowdown"));
        assert!(has("job-abort"));
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        assert_eq!(bad_day(9, 50_000.0, 4_000.0), bad_day(9, 50_000.0, 4_000.0));
        assert_ne!(churn(1, 50_000.0, 4_000.0), churn(2, 50_000.0, 4_000.0));
    }

    #[test]
    fn scripted_sorts_by_time() {
        let plan = scripted(
            0,
            [
                (300.0, FaultKind::JobAbort),
                (100.0, FaultKind::MachineCrash),
            ],
        );
        assert_eq!(plan.events()[0].at, 100.0);
        assert_eq!(plan.events()[1].at, 300.0);
    }
}
