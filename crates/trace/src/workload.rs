//! The 80-job base workload of Table I.
//!
//! Per-job costs are derived physically rather than sampled:
//!
//! - **COMP** — each iteration scans the job's input partition at an
//!   application-specific rate (bytes of input processed per CPU-second;
//!   LDA's Gibbs sweeps are far slower per byte than Lasso's dot
//!   products), multiplied by a hyper-parameter factor (e.g. the class
//!   count of MLR in Figure 2 scales per-example cost).
//! - **COMM** — each iteration pulls and pushes (a fraction of) the
//!   model through the m4.2xlarge NIC (1.1 Gbps), so `Tnet ≈ 2 ×
//!   sync_fraction × model_bytes / bandwidth`.
//!
//! The resulting distributions of iteration time and computation ratio
//! at DoP 16 reproduce the shape of Figure 9.

use harmony_core::cluster::MachineSpec;
use harmony_core::job::{AppKind, JobSpec};

/// Tunables of the workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Number of hyper-parameter variants per (app, dataset) pair.
    pub hyper_params: u32,
    /// NIC bandwidth used to derive communication costs (bytes/s).
    pub network_bytes_per_sec: f64,
    /// Global multiplier on job lengths (epochs), for quick test runs.
    pub epoch_scale: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            hyper_params: 10,
            network_bytes_per_sec: MachineSpec::m4_2xlarge().network_bytes_per_sec,
            epoch_scale: 1.0,
        }
    }
}

/// One (app, dataset) row of Table I plus its cost recipe.
struct Recipe {
    app: AppKind,
    dataset: &'static str,
    input_gb: f64,
    model_gb: f64,
    /// Input bytes processed per CPU-second (per machine).
    scan_rate: f64,
    /// Fraction of the model transferred per PULL (and per PUSH).
    sync_fraction: f64,
    /// Baseline epochs to convergence.
    epochs: u32,
}

const GB: f64 = 1_073_741_824.0;

/// Table I with per-app computation rates and sync fractions.
fn recipes() -> [Recipe; 8] {
    [
        Recipe {
            app: AppKind::Nmf,
            dataset: "netflix64x",
            input_gb: 45.6,
            model_gb: 1.0,
            scan_rate: 100.0e6,
            sync_fraction: 1.0,
            epochs: 6,
        },
        Recipe {
            app: AppKind::Nmf,
            dataset: "netflix128x",
            input_gb: 91.2,
            model_gb: 5.0,
            scan_rate: 100.0e6,
            sync_fraction: 1.0,
            epochs: 5,
        },
        Recipe {
            app: AppKind::Lda,
            dataset: "pubmed",
            input_gb: 4.3,
            model_gb: 2.1,
            scan_rate: 15.0e6,
            sync_fraction: 1.0,
            epochs: 8,
        },
        Recipe {
            app: AppKind::Lda,
            dataset: "nytimes",
            input_gb: 0.6,
            model_gb: 1.1,
            scan_rate: 15.0e6,
            sync_fraction: 1.0,
            epochs: 10,
        },
        Recipe {
            app: AppKind::Mlr,
            dataset: "synthetic",
            input_gb: 78.4,
            model_gb: 12.0,
            scan_rate: 120.0e6,
            sync_fraction: 0.5,
            epochs: 6,
        },
        Recipe {
            app: AppKind::Mlr,
            dataset: "synthetic-2x",
            input_gb: 155.0,
            model_gb: 24.0,
            scan_rate: 120.0e6,
            sync_fraction: 0.5,
            epochs: 5,
        },
        Recipe {
            app: AppKind::Lasso,
            dataset: "synthetic",
            input_gb: 78.4,
            model_gb: 12.0,
            scan_rate: 250.0e6,
            sync_fraction: 0.25,
            epochs: 8,
        },
        Recipe {
            app: AppKind::Lasso,
            dataset: "synthetic-2x",
            input_gb: 155.0,
            model_gb: 24.0,
            scan_rate: 250.0e6,
            sync_fraction: 0.25,
            epochs: 6,
        },
    ]
}

/// Builds the full base workload: `8 × hyper_params` jobs (80 with the
/// default 10 hyper-parameters), in Table I order.
pub fn base_workload() -> Vec<JobSpec> {
    workload_with(WorkloadParams::default())
}

/// Builds the workload with custom parameters.
///
/// # Panics
///
/// Panics if `hyper_params` is zero or rates are non-positive.
pub fn workload_with(params: WorkloadParams) -> Vec<JobSpec> {
    assert!(params.hyper_params > 0, "need at least one hyper-parameter");
    assert!(
        params.network_bytes_per_sec > 0.0 && params.epoch_scale > 0.0,
        "rates must be positive"
    );
    let mut jobs = Vec::with_capacity(8 * params.hyper_params as usize);
    for recipe in recipes() {
        for h in 0..params.hyper_params {
            // Hyper-parameter factor: e.g. MLR's class count multiplies
            // per-example cost; spread 0.5×..4.55× in 10 steps.
            let factor = 0.5 + 0.45 * h as f64;
            let input_bytes = (recipe.input_gb * GB) as u64;
            let model_bytes = (recipe.model_gb * GB) as u64;
            let comp_cost = recipe.input_gb * GB / recipe.scan_rate * factor;
            let net_cost =
                2.0 * recipe.sync_fraction * recipe.model_gb * GB / params.network_bytes_per_sec;
            let epochs = ((recipe.epochs as f64 * params.epoch_scale).round() as u32).max(1);
            jobs.push(JobSpec {
                name: format!("{}-{}-h{}", recipe.app, recipe.dataset, h),
                app: recipe.app,
                dataset: recipe.dataset.to_string(),
                input_bytes,
                model_bytes,
                comp_cost,
                net_cost,
                sync: harmony_core::job::SyncKind::ParameterServer,
                pull_fraction: 0.5,
                iters_per_epoch: 5,
                target_epochs: epochs,
            });
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_workload_has_80_jobs() {
        let jobs = base_workload();
        assert_eq!(jobs.len(), 80);
        for j in &jobs {
            assert!(j.validate().is_ok(), "{}: {:?}", j.name, j.validate());
        }
    }

    #[test]
    fn all_table1_rows_present() {
        let jobs = base_workload();
        for (app, dataset) in [
            (AppKind::Nmf, "netflix64x"),
            (AppKind::Nmf, "netflix128x"),
            (AppKind::Lda, "pubmed"),
            (AppKind::Lda, "nytimes"),
            (AppKind::Mlr, "synthetic"),
            (AppKind::Mlr, "synthetic-2x"),
            (AppKind::Lasso, "synthetic"),
            (AppKind::Lasso, "synthetic-2x"),
        ] {
            assert_eq!(
                jobs.iter()
                    .filter(|j| j.app == app && j.dataset == dataset)
                    .count(),
                10,
                "{app}/{dataset}"
            );
        }
    }

    #[test]
    fn iteration_times_match_figure_9a_shape() {
        // At DoP 16 almost all jobs iterate within 20 minutes, with the
        // median in low single-digit minutes.
        let jobs = base_workload();
        let mut minutes: Vec<f64> = jobs.iter().map(|j| j.iter_time_at(16) / 60.0).collect();
        minutes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = minutes[minutes.len() / 2];
        let p95 = minutes[(minutes.len() as f64 * 0.95) as usize];
        assert!(median > 0.3 && median < 8.0, "median {median} min");
        assert!(p95 < 25.0, "p95 {p95} min");
    }

    #[test]
    fn comp_ratios_match_figure_9b_shape() {
        // Ratios should spread across (0, 1), not cluster at an extreme.
        let jobs = base_workload();
        let mut ratios: Vec<f64> = jobs.iter().map(|j| j.comp_ratio_at(16)).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p10 = ratios[8];
        let p90 = ratios[72];
        assert!(p10 < 0.55, "p10 {p10}");
        assert!(p90 > 0.7, "p90 {p90}");
        assert!(ratios.iter().all(|r| (0.0..1.0).contains(r)));
    }

    #[test]
    fn job_names_are_unique() {
        let jobs = base_workload();
        let names: std::collections::HashSet<_> = jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names.len(), jobs.len());
    }

    #[test]
    fn epoch_scale_shortens_jobs() {
        let short = workload_with(WorkloadParams {
            epoch_scale: 0.2,
            ..Default::default()
        });
        let full = base_workload();
        let short_iters: u64 = short.iter().map(JobSpec::total_iterations).sum();
        let full_iters: u64 = full.iter().map(JobSpec::total_iterations).sum();
        assert!(short_iters < full_iters / 2);
        assert!(short.iter().all(|j| j.target_epochs >= 1));
    }

    #[test]
    fn hyper_params_scale_computation_not_communication() {
        let jobs = base_workload();
        let h0 = &jobs[0];
        let h9 = &jobs[9];
        assert!(h9.comp_cost > h0.comp_cost * 5.0);
        assert_eq!(h9.net_cost, h0.net_cost);
    }
}
