//! Job arrival processes (§V-D).
//!
//! Three processes drive the sensitivity experiments:
//!
//! - [`ArrivalProcess::Batch`] — all jobs submitted at time zero (the
//!   main experiment of §V-C);
//! - [`ArrivalProcess::Poisson`] — independent arrivals with a given
//!   mean inter-arrival time (swept 0–8 minutes in §V-D);
//! - [`ArrivalProcess::Bursty`] — a heavy-tailed process with arrival
//!   spikes, standing in for the Google cluster-trace extracts (the
//!   traces themselves only contribute "diverse pattern of arrivals and
//!   job arrival spikes").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A job arrival process; generates submission times in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Everything arrives at `t = 0`.
    Batch,
    /// Exponential inter-arrival times with the given mean (seconds).
    Poisson {
        /// Mean inter-arrival time in seconds.
        mean_secs: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Spiky arrivals: bursts of several jobs separated by Pareto
    /// (heavy-tailed) gaps, Google-trace-like.
    Bursty {
        /// Mean burst size (jobs per spike).
        burst_mean: f64,
        /// Scale of the inter-burst gap (seconds).
        gap_scale_secs: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// Generates `n` non-decreasing arrival times (seconds).
    pub fn generate(&self, n: usize) -> Vec<f64> {
        match *self {
            ArrivalProcess::Batch => vec![0.0; n],
            ArrivalProcess::Poisson { mean_secs, seed } => {
                assert!(mean_secs >= 0.0, "mean inter-arrival must be non-negative");
                if mean_secs == 0.0 {
                    return vec![0.0; n];
                }
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        t += -u.ln() * mean_secs;
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                burst_mean,
                gap_scale_secs,
                seed,
            } => {
                assert!(burst_mean >= 1.0, "bursts must average at least one job");
                assert!(gap_scale_secs >= 0.0, "gap scale must be non-negative");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut out = Vec::with_capacity(n);
                let mut t = 0.0;
                while out.len() < n {
                    // Burst size: geometric-ish around burst_mean.
                    let size = 1 + rng.gen_range(0.0..2.0 * burst_mean - 1.0).round() as usize;
                    for _ in 0..size.min(n - out.len()) {
                        out.push(t);
                    }
                    // Pareto(α=1.5) gap: heavy tail produces lulls and
                    // pile-ups like the Google traces.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += gap_scale_secs * (u.powf(-1.0 / 1.5) - 1.0).min(50.0);
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_all_zero() {
        assert_eq!(ArrivalProcess::Batch.generate(4), vec![0.0; 4]);
    }

    #[test]
    fn poisson_zero_mean_degenerates_to_batch() {
        let p = ArrivalProcess::Poisson {
            mean_secs: 0.0,
            seed: 1,
        };
        assert_eq!(p.generate(3), vec![0.0; 3]);
    }

    #[test]
    fn poisson_times_are_increasing_with_right_mean() {
        let p = ArrivalProcess::Poisson {
            mean_secs: 60.0,
            seed: 7,
        };
        let times = p.generate(2000);
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        let mean_gap = times.last().unwrap() / 2000.0;
        assert!(
            (mean_gap - 60.0).abs() < 6.0,
            "empirical mean gap {mean_gap}"
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let p = |seed| ArrivalProcess::Poisson {
            mean_secs: 10.0,
            seed,
        };
        assert_eq!(p(3).generate(10), p(3).generate(10));
        assert_ne!(p(3).generate(10), p(4).generate(10));
    }

    #[test]
    fn bursty_produces_spikes() {
        let b = ArrivalProcess::Bursty {
            burst_mean: 4.0,
            gap_scale_secs: 120.0,
            seed: 11,
        };
        let times = b.generate(100);
        assert_eq!(times.len(), 100);
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        // Spikes: many identical consecutive timestamps.
        let ties = times.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(ties > 30, "only {ties} tied arrivals");
        // Lulls: at least one long gap.
        let max_gap = times.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        assert!(max_gap > 120.0, "max gap {max_gap}");
    }

    #[test]
    fn generate_zero_jobs_is_empty() {
        assert!(ArrivalProcess::Batch.generate(0).is_empty());
        let p = ArrivalProcess::Poisson {
            mean_secs: 1.0,
            seed: 0,
        };
        assert!(p.generate(0).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arrival times are always non-decreasing and non-negative,
        /// whatever the process and parameters.
        #[test]
        fn arrivals_are_sorted_and_nonnegative(
            n in 0usize..200,
            mean in 0.0f64..600.0,
            seed in 0u64..256,
        ) {
            for process in [
                ArrivalProcess::Batch,
                ArrivalProcess::Poisson { mean_secs: mean, seed },
                ArrivalProcess::Bursty {
                    burst_mean: 1.0 + mean / 100.0,
                    gap_scale_secs: mean,
                    seed,
                },
            ] {
                let times = process.generate(n);
                prop_assert_eq!(times.len(), n);
                prop_assert!(times.iter().all(|&t| t >= 0.0 && t.is_finite()));
                prop_assert!(times.windows(2).all(|w| w[1] >= w[0]));
            }
        }

        /// Same seed, same sequence; different seeds diverge for any
        /// non-degenerate Poisson process.
        #[test]
        fn poisson_reproducibility(seed in 0u64..1000) {
            let p = |s| ArrivalProcess::Poisson { mean_secs: 60.0, seed: s };
            prop_assert_eq!(p(seed).generate(32), p(seed).generate(32));
            prop_assert_ne!(p(seed).generate(32), p(seed + 1).generate(32));
        }
    }
}
