//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — an
//! unbounded multi-producer *multi-consumer* FIFO channel (std's mpsc
//! receiver is single-consumer, which the PS executors cannot use: every
//! worker thread clones the receiver). Built on `Mutex<VecDeque>` +
//! `Condvar`; throughput is far below real crossbeam but the semantics
//! match what the workspace needs.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Receiver::recv`] on a closed, drained channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (Not tracked by this stand-in: sends always succeed while any
    /// `Receiver` may still exist; matching the workspace's usage, which
    /// never drops all receivers before the senders.)
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The sending half; cloneable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable across threads (each item is
    /// delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock");
            }
        }

        /// Non-blocking receive of any already-queued item.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared
                .queue
                .lock()
                .expect("channel lock")
                .items
                .pop_front()
                .ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_when_all_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_partition_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let h1 = std::thread::spawn(move || (0..).map_while(|_| rx.recv().ok()).count());
            let h2 = std::thread::spawn(move || (0..).map_while(|_| rx2.recv().ok()).count());
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total = h1.join().unwrap() + h2.join().unwrap();
            assert_eq!(total, 1000);
        }

        #[test]
        fn cloned_senders_keep_channel_open() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            drop(tx2);
            assert!(rx.recv().is_err());
        }
    }
}
