//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's non-poisoning
//! API (`lock()` / `read()` / `write()` return guards directly). A
//! panicked holder aborts the poison by unwrapping into the inner value,
//! matching parking_lot's "no poisoning" behavior closely enough for
//! this workspace.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 1);
    }
}
