//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) API subset the workspace actually uses — seeded
//! [`rngs::StdRng`], [`Rng::gen_range`] over float and integer ranges,
//! and [`Rng::gen_bool`] — backed by xoshiro256++ with a splitmix64
//! seeder. Streams are fully deterministic per seed, which is all the
//! simulator and the tests rely on; the exact values differ from
//! upstream `rand`, which no test may (or does) depend on.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Splitmix64 step — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; the stream differs from upstream but has the same
    /// contract: fixed seed → fixed stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// Uniform `f64` in `[0, 1)` with 53 random bits.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        assert!(lo < hi, "gen_range needs a non-empty range");
        let x = lo + (hi - lo) * unit_f64(rng);
        // Floating rounding may land exactly on `hi`; nudge back in.
        if x >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            x
        }
    }

    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        assert!(lo <= hi, "gen_range needs a non-empty range");
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64))
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range needs a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }

            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo <= hi, "gen_range needs a non-empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level draws, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform draw from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0, 1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x), "{x}");
            let y = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn int_ranges_are_respected_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn tiny_positive_lower_bound_stays_in_range() {
        // The arrival/noise samplers draw from `f64::MIN_POSITIVE..1.0`
        // and take a log — zero would be fatal.
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
            assert!(u.ln().is_finite());
        }
    }
}
