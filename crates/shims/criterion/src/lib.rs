//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the workspace's benches compiling and runnable without
//! crates.io. `Bencher::iter` times a handful of iterations with
//! `std::time::Instant` and the harness prints one line per benchmark —
//! no statistics, plots, or warm-up. Good enough to spot order-of-
//! magnitude regressions while offline.

use std::time::Instant;

/// How many timed iterations [`Bencher::iter`] runs.
const ITERS: u32 = 3;

/// Passed to bench closures; times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine` over a few iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = Some(start.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
}

/// Identifier for one input point of a parameterized benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

fn report(name: &str, bencher: &Bencher) {
    match bencher.nanos_per_iter {
        Some(ns) => println!("bench {name:<48} {:>12.1} us/iter", ns / 1e3),
        None => println!("bench {name:<48} (no measurement)"),
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the target sample count (accepted, ignored by the stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Finishes the group (no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }
}

/// Declares a group-runner function calling each bench with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            $(
                let mut c = $crate::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.nanos_per_iter.unwrap() > 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
                b.iter(|| x * 2)
            })
            .finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("80j").to_string(), "80j");
    }
}
