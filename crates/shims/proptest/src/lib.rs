//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/macro subset this workspace uses: numeric
//! range strategies, tuples, `prop::collection::vec`, `prop_map`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic seed derived from the test name, so failures reproduce;
//! there is no shrinking — a failing case panics with its inputs left in
//! the assertion message.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Per-test configuration (case count only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies (a seeded [`StdRng`]).
pub type TestRng = StdRng;

/// Drives the cases of one property: a deterministic RNG stream per
/// (test name, case index).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    case: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            config,
            seed: h,
            case: 0,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// RNG for the next case.
    pub fn next_rng(&mut self) -> TestRng {
        self.case += 1;
        StdRng::seed_from_u64(
            self.seed
                .wrapping_add(self.case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`); only
/// the types this workspace actually draws are covered.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen_range(0u8..2) == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The `prop::` namespace (collection strategies).
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec`s with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// Generates vectors of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(
                !len.is_empty(),
                "vec strategy needs a non-empty length range"
            );
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Commonly imported names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::prop;
    pub use super::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics with the case inputs
/// visible in the containing test's panic message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Expands to an early return from the per-case closure.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
            for _ in 0..runner.cases() {
                let mut rng = runner.next_rng();
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let case = move || $body;
                case();
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRunner::new(ProptestConfig::with_cases(4), "t");
        let mut b = TestRunner::new(ProptestConfig::with_cases(4), "t");
        use rand::Rng;
        assert_eq!(
            a.next_rng().gen_range(0u64..u64::MAX),
            b.next_rng().gen_range(0u64..u64::MAX)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(x in 1u32..10, (a, b) in (0.0f64..1.0, 5usize..9)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..9).contains(&b));
        }

        #[test]
        fn vec_strategy_honors_length(v in prop::collection::vec(0.0f64..=1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in v {
                prop_assert!((0.0..=1.0).contains(&x));
            }
        }

        #[test]
        fn prop_map_applies(v in (1u32..5).prop_map(|x| x * 10)) {
            prop_assert!(v % 10 == 0);
            prop_assert!((10..50).contains(&v));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
