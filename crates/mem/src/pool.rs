//! A recycling pool of `f64` working buffers.
//!
//! The PS runtime needs one pull buffer and one gradient buffer per
//! worker per job, every iteration. Allocating them fresh each
//! iteration puts megabytes of short-lived garbage on the allocator's
//! fast path (and, for large models, forces mmap/munmap churn); the
//! pool instead hands out [`PooledBuffer`]s that return themselves on
//! drop, so a steady-state training iteration performs zero heap
//! allocations.
//!
//! Where [`crate::BlockStore`] manages *input* blocks (spillable,
//! disk-backed, §IV-C), `BufferPool` manages *working* memory: always
//! resident, length-keyed, zero-initialised on acquire. Ownership
//! rules:
//!
//! - `acquire(len)` returns a zeroed buffer of exactly `len` elements,
//!   reusing a free buffer of the same length when one exists;
//! - the buffer is exclusively owned until dropped — no aliasing, no
//!   generation counters;
//! - dropping returns the allocation to the pool's free list (the
//!   pool itself is `Arc`-shared internally, so buffers may outlive
//!   the handle they were acquired from).

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shared state behind every [`BufferPool`] handle and the buffers it
/// has issued.
#[derive(Debug, Default)]
struct PoolInner {
    /// Free buffers, keyed by length so mixed-size jobs don't thrash.
    free: Mutex<BTreeMap<usize, Vec<Box<[f64]>>>>,
    /// Free `u32` coordinate-index buffers, keyed like `free`.
    free_indices: Mutex<BTreeMap<usize, Vec<Box<[u32]>>>>,
    /// Buffers created fresh because no free one matched.
    allocations: AtomicUsize,
    /// Acquisitions served from the free list.
    reuses: AtomicUsize,
    /// Buffers currently held by callers.
    outstanding: AtomicUsize,
}

/// Length-keyed recycling pool of zero-initialised `f64` buffers.
///
/// Cloning the handle is cheap and shares the underlying free lists.
#[derive(Debug, Clone, Default)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

/// Counters describing a pool's lifetime behaviour (see
/// [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh heap allocations performed by `acquire`.
    pub allocations: usize,
    /// Acquisitions satisfied by recycling a previously-freed buffer.
    pub reuses: usize,
    /// Buffers currently checked out.
    pub outstanding: usize,
    /// Buffers sitting on the free lists.
    pub free: usize,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a zeroed buffer of exactly `len` elements, recycling a
    /// same-length free buffer when available.
    pub fn acquire(&self, len: usize) -> PooledBuffer {
        let recycled = {
            let mut free = self.inner.free.lock().expect("pool lock");
            free.get_mut(&len).and_then(Vec::pop)
        };
        let buf = match recycled {
            Some(mut buf) => {
                self.inner.reuses.fetch_add(1, Ordering::Relaxed);
                buf.fill(0.0);
                buf
            }
            None => {
                self.inner.allocations.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len].into_boxed_slice()
            }
        };
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        PooledBuffer {
            buf: Some(buf),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Returns a zeroed `u32` index buffer of exactly `len` elements,
    /// recycling a same-length free buffer when available. Index
    /// buffers carry the coordinates of sparse deltas; they share the
    /// pool's counters with the `f64` buffers, so the steady-state
    /// zero-allocation audit covers both kinds.
    pub fn acquire_indices(&self, len: usize) -> PooledIndexBuffer {
        let recycled = {
            let mut free = self.inner.free_indices.lock().expect("pool lock");
            free.get_mut(&len).and_then(Vec::pop)
        };
        let buf = match recycled {
            Some(mut buf) => {
                self.inner.reuses.fetch_add(1, Ordering::Relaxed);
                buf.fill(0);
                buf
            }
            None => {
                self.inner.allocations.fetch_add(1, Ordering::Relaxed);
                vec![0u32; len].into_boxed_slice()
            }
        };
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        PooledIndexBuffer {
            buf: Some(buf),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Lifetime counters for this pool.
    pub fn stats(&self) -> PoolStats {
        let free = {
            let map = self.inner.free.lock().expect("pool lock");
            let idx = self.inner.free_indices.lock().expect("pool lock");
            map.values().map(Vec::len).sum::<usize>() + idx.values().map(Vec::len).sum::<usize>()
        };
        PoolStats {
            allocations: self.inner.allocations.load(Ordering::Relaxed),
            reuses: self.inner.reuses.load(Ordering::Relaxed),
            outstanding: self.inner.outstanding.load(Ordering::Relaxed),
            free,
        }
    }
}

/// An exclusively-owned `f64` buffer that returns itself to its
/// [`BufferPool`] when dropped. Derefs to `[f64]`.
#[derive(Debug)]
pub struct PooledBuffer {
    buf: Option<Box<[f64]>>,
    pool: Arc<PoolInner>,
}

impl PooledBuffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.slice().len()
    }

    /// True when the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.slice().is_empty()
    }

    fn slice(&self) -> &[f64] {
        self.buf.as_deref().expect("buffer present until drop")
    }
}

impl Deref for PooledBuffer {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.slice()
    }
}

impl DerefMut for PooledBuffer {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.buf.as_deref_mut().expect("buffer present until drop")
    }
}

impl AsRef<[f64]> for PooledBuffer {
    fn as_ref(&self) -> &[f64] {
        self.slice()
    }
}

impl AsMut<[f64]> for PooledBuffer {
    fn as_mut(&mut self) -> &mut [f64] {
        self.buf.as_deref_mut().expect("buffer present until drop")
    }
}

impl Drop for PooledBuffer {
    fn drop(&mut self) {
        let buf = self.buf.take().expect("double drop");
        self.pool.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut free = self.pool.free.lock().expect("pool lock");
        free.entry(buf.len()).or_default().push(buf);
    }
}

/// An exclusively-owned `u32` index buffer that returns itself to its
/// [`BufferPool`] when dropped. Derefs to `[u32]`.
#[derive(Debug)]
pub struct PooledIndexBuffer {
    buf: Option<Box<[u32]>>,
    pool: Arc<PoolInner>,
}

impl PooledIndexBuffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.slice().len()
    }

    /// True when the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.slice().is_empty()
    }

    fn slice(&self) -> &[u32] {
        self.buf.as_deref().expect("buffer present until drop")
    }
}

impl Deref for PooledIndexBuffer {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.slice()
    }
}

impl DerefMut for PooledIndexBuffer {
    fn deref_mut(&mut self) -> &mut [u32] {
        self.buf.as_deref_mut().expect("buffer present until drop")
    }
}

impl AsRef<[u32]> for PooledIndexBuffer {
    fn as_ref(&self) -> &[u32] {
        self.slice()
    }
}

impl AsMut<[u32]> for PooledIndexBuffer {
    fn as_mut(&mut self) -> &mut [u32] {
        self.buf.as_deref_mut().expect("buffer present until drop")
    }
}

impl Drop for PooledIndexBuffer {
    fn drop(&mut self) {
        let buf = self.buf.take().expect("double drop");
        self.pool.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut free = self.pool.free_indices.lock().expect("pool lock");
        free.entry(buf.len()).or_default().push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_returns_zeroed_buffer_of_requested_len() {
        let pool = BufferPool::new();
        let mut b = pool.acquire(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&x| x == 0.0));
        b[3] = 7.0;
        assert_eq!(b[3], 7.0);
    }

    #[test]
    fn drop_recycles_and_acquire_rezeroes() {
        let pool = BufferPool::new();
        {
            let mut b = pool.acquire(8);
            b.fill(9.0);
        }
        let stats = pool.stats();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.outstanding, 0);
        assert_eq!(stats.free, 1);

        let b = pool.acquire(8);
        assert!(b.iter().all(|&x| x == 0.0), "recycled buffer re-zeroed");
        let stats = pool.stats();
        assert_eq!(stats.allocations, 1, "no second allocation");
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.outstanding, 1);
    }

    #[test]
    fn lengths_are_keyed_independently() {
        let pool = BufferPool::new();
        drop(pool.acquire(4));
        let _b8 = pool.acquire(8);
        let stats = pool.stats();
        assert_eq!(stats.allocations, 2, "len-8 cannot reuse the len-4 slot");
        assert_eq!(stats.free, 1);
    }

    #[test]
    fn buffers_outlive_the_pool_handle() {
        let pool = BufferPool::new();
        let clone = pool.clone();
        let b = pool.acquire(4);
        drop(pool);
        drop(b);
        assert_eq!(clone.stats().free, 1);
    }

    #[test]
    fn index_buffers_recycle_like_value_buffers() {
        let pool = BufferPool::new();
        {
            let mut idx = pool.acquire_indices(16);
            assert_eq!(idx.len(), 16);
            assert!(idx.iter().all(|&i| i == 0));
            idx[0] = 42;
        }
        let recycled = pool.acquire_indices(16);
        assert!(recycled.iter().all(|&i| i == 0), "recycled index re-zeroed");
        let stats = pool.stats();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.outstanding, 1);
    }

    #[test]
    fn index_and_value_free_lists_are_independent() {
        let pool = BufferPool::new();
        drop(pool.acquire(8));
        let _idx = pool.acquire_indices(8);
        let stats = pool.stats();
        assert_eq!(
            stats.allocations, 2,
            "a u32 acquire cannot reuse the f64 slot"
        );
        assert_eq!(stats.free, 1);
    }

    #[test]
    fn steady_state_reuse_allocates_once_per_size() {
        let pool = BufferPool::new();
        for _ in 0..100 {
            let _a = pool.acquire(32);
            let _b = pool.acquire(32);
        }
        let stats = pool.stats();
        assert_eq!(stats.allocations, 2);
        assert_eq!(stats.reuses, 198);
    }
}
