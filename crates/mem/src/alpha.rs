//! The hill-climbing disk-ratio (α) controller (§IV-C).
//!
//! "We use hill-climbing to incrementally move α_j to an optimal value.
//! We determine the initial value by estimating the memory use for
//! accommodating input data and model data."
//!
//! The controller watches the per-iteration cost (iteration time
//! including GC and disk-blocked time) and walks α in the direction that
//! reduces it, reversing and shrinking its step on failure. Each job has
//! its own controller, which is what lets Harmony beat any single fixed
//! α shared by all jobs (§V-G: adaptive 44.3 s vs best-fixed 52.9 s).

/// Per-job hill-climbing controller for the disk-block ratio α.
///
/// # Examples
///
/// ```
/// use harmony_mem::AlphaController;
///
/// // Pretend cost curve with a minimum at α = 0.3.
/// let cost = |a: f64| (a - 0.3).powi(2) + 1.0;
/// let mut ctl = AlphaController::new(0.8, 0.1);
/// for _ in 0..64 {
///     let a = ctl.alpha();
///     ctl.observe(cost(a));
/// }
/// assert!((ctl.alpha() - 0.3).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaController {
    alpha: f64,
    step: f64,
    direction: f64,
    min_step: f64,
    max_step: f64,
    tolerance: f64,
    last_cost: Option<f64>,
}

impl AlphaController {
    /// Creates a controller starting at `initial_alpha` with the given
    /// step size.
    ///
    /// # Panics
    ///
    /// Panics if `initial_alpha` is outside `[0, 1]` or `step` is not
    /// positive.
    pub fn new(initial_alpha: f64, step: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&initial_alpha),
            "alpha must be in [0, 1], got {initial_alpha}"
        );
        assert!(step > 0.0, "step must be positive, got {step}");
        Self {
            alpha: initial_alpha,
            step,
            // Probe toward more spill first: under memory pressure that
            // is the safe direction (a wrong guess costs one cheap
            // reversal; the opposite wrong guess spikes GC).
            direction: 1.0,
            min_step: step / 16.0,
            max_step: step,
            tolerance: 0.01,
            last_cost: None,
        }
    }

    /// Estimates the initial α from memory footprints (§IV-C: "we
    /// determine the initial value by estimating the memory use for
    /// accommodating input data and model data", sized by sampling).
    ///
    /// `input_bytes` is the job's local input partition, `model_bytes`
    /// its local model partition, and `memory_budget` the bytes the job
    /// may use before pressuring the heap. The model must stay resident,
    /// so only the remainder is available for input blocks.
    pub fn initial_alpha(input_bytes: u64, model_bytes: u64, memory_budget: u64) -> f64 {
        if input_bytes == 0 {
            return 0.0;
        }
        let for_input = memory_budget.saturating_sub(model_bytes);
        let fit = for_input as f64 / input_bytes as f64;
        (1.0 - fit).clamp(0.0, 1.0)
    }

    /// Current α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current step magnitude.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Feeds the cost observed while running at the current α and moves
    /// α one hill-climbing step. Returns the new α.
    ///
    /// Strategy: compare with the *previous* observation (not an
    /// all-time best, which would go stale when the optimum drifts —
    /// e.g. after a regrouping changes the job's memory budget). Keep
    /// walking while cost does not worsen, growing the step back toward
    /// its initial size; on a worsening step, backtrack, reverse and
    /// halve the step (bounded below so probing never stops).
    pub fn observe(&mut self, cost: f64) -> f64 {
        match self.last_cost {
            None => self.advance(),
            Some(prev) => {
                let rel = (cost - prev) / prev.abs().max(1e-12);
                if rel.abs() <= self.tolerance {
                    // Flat terrain: hold position. Random-walking here
                    // would drift the ratio for no benefit (and, for
                    // co-located controllers, destabilize the shared
                    // memory budget).
                } else if cost < prev {
                    self.step = (self.step * 1.25).min(self.max_step);
                    self.advance();
                } else {
                    // Worse: step back, turn around, refine.
                    self.alpha = (self.alpha - self.direction * self.step).clamp(0.0, 1.0);
                    self.direction = -self.direction;
                    self.step = (self.step / 2.0).max(self.min_step);
                    self.advance();
                }
            }
        }
        self.last_cost = Some(cost);
        self.alpha
    }

    /// Moves α one step in the current direction; a step clamped into a
    /// no-op at the `[0, 1]` boundary reverses direction instead, so the
    /// controller cannot wedge itself against an interval edge.
    fn advance(&mut self) {
        let proposed = (self.alpha + self.direction * self.step).clamp(0.0, 1.0);
        if (proposed - self.alpha).abs() < 1e-12 {
            self.direction = -self.direction;
            self.alpha = (self.alpha + self.direction * self.step).clamp(0.0, 1.0);
        } else {
            self.alpha = proposed;
        }
    }
}

impl Default for AlphaController {
    /// Starts at α = 0.5 with step 0.05.
    fn default() -> Self {
        Self::new(0.5, 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn converge(cost: impl Fn(f64) -> f64, start: f64, iters: usize) -> f64 {
        let mut ctl = AlphaController::new(start, 0.1);
        for _ in 0..iters {
            let a = ctl.alpha();
            ctl.observe(cost(a));
        }
        ctl.alpha()
    }

    #[test]
    fn converges_to_interior_minimum_from_both_sides() {
        let cost = |a: f64| (a - 0.3).powi(2) + 1.0;
        assert!((converge(cost, 0.9, 100) - 0.3).abs() < 0.1);
        assert!((converge(cost, 0.0, 100) - 0.3).abs() < 0.1);
    }

    #[test]
    fn converges_to_boundary_minimum() {
        // Cost decreasing in α: best to spill everything.
        let cost = |a: f64| 2.0 - a;
        assert!(converge(cost, 0.2, 100) > 0.9);
        // Cost increasing in α: keep everything in memory.
        let cost = |a: f64| 1.0 + a;
        assert!(converge(cost, 0.8, 100) < 0.1);
    }

    #[test]
    fn alpha_stays_in_unit_interval() {
        let mut ctl = AlphaController::new(0.0, 0.3);
        for i in 0..50 {
            let a = ctl.observe((i % 7) as f64);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn step_shrinks_but_not_to_zero() {
        let mut ctl = AlphaController::new(0.5, 0.16);
        // Alternate good/bad costs to force many reversals.
        for i in 0..40 {
            ctl.observe(if i % 2 == 0 { 1.0 } else { 100.0 });
        }
        assert!(ctl.step() >= 0.16 / 16.0 - 1e-12);
    }

    #[test]
    fn initial_alpha_from_footprints() {
        // Everything fits: no spill.
        assert_eq!(AlphaController::initial_alpha(100, 50, 1000), 0.0);
        // Nothing fits after the model: spill all input.
        assert_eq!(AlphaController::initial_alpha(100, 1000, 1000), 1.0);
        // Half fits.
        let a = AlphaController::initial_alpha(100, 0, 50);
        assert!((a - 0.5).abs() < 1e-12);
        // Zero input is a no-op.
        assert_eq!(AlphaController::initial_alpha(0, 10, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_initial_alpha() {
        let _ = AlphaController::new(1.5, 0.1);
    }
}
