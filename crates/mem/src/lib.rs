//! Memory management for co-located ML jobs (§IV-C of the Harmony
//! paper).
//!
//! Running many jobs on the same machines multiplies memory pressure:
//! every job keeps its training input in worker memory and its model
//! partition in server memory, and managed runtimes pay growing garbage
//! collection costs as the heap fills — or die with OOM errors
//! (Figure 4 shows the naive 3-job co-location OOMing).
//!
//! Harmony's answer is *dynamic data reloading*: because only one COMP
//! subtask runs at a time, input data of the jobs that are not computing
//! can live on disk. Each job `j` keeps a fraction
//! `α_j = B_disk_j / B_total_j` of its input blocks disk-side, reloading
//! them in the background while other jobs compute. A hill-climbing
//! controller moves `α_j` toward the sweet spot between GC pressure
//! (α too low) and disk-blocked iterations (α too high).
//!
//! Modules:
//! - [`block`]: input-data blocks and their residency;
//! - [`store`]: a per-job block store with spill/reload plumbing and
//!   pluggable backends (pure accounting, or real temp files);
//! - [`alpha`]: the per-job hill-climbing α controller;
//! - [`gc`]: the analytic GC-pressure model shared with the cluster
//!   simulator;
//! - [`pool`]: a recycling pool of `f64` working buffers so the PS
//!   runtime's steady-state iterations allocate nothing.

pub mod alpha;
pub mod block;
pub mod gc;
pub mod pool;
pub mod store;

pub use alpha::AlphaController;
pub use block::{Block, BlockId, Residency};
pub use gc::GcModel;
pub use pool::{BufferPool, PoolStats, PooledBuffer, PooledIndexBuffer};
pub use store::{BlockStore, FileBackend, NullBackend, SpillBackend};
