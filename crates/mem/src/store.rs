//! Per-job block store with spill/reload plumbing.
//!
//! The store owns a job's input blocks, tracks which side (memory/disk)
//! each lives on, and moves blocks to honor a target disk ratio α. Data
//! movement goes through a [`SpillBackend`]:
//!
//! - [`NullBackend`] does pure accounting — the right choice inside the
//!   discrete-event simulator, where time is charged analytically;
//! - [`FileBackend`] writes real bytes to a spill directory — used by
//!   the in-process PS runtime to exercise the true code path.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

use crate::block::{Block, BlockId, Residency};

/// Destination for spilled block payloads.
///
/// Implementations must be able to return exactly the bytes that were
/// spilled. This trait is object-safe so stores can be backend-agnostic.
pub trait SpillBackend: Send {
    /// Persists `payload` for `block`, replacing any previous spill.
    fn spill(&mut self, block: BlockId, payload: &[u8]) -> std::io::Result<()>;
    /// Reads back a previously spilled payload.
    fn reload(&mut self, block: BlockId) -> std::io::Result<Vec<u8>>;
    /// Drops a spilled payload (job finished or block promoted).
    fn discard(&mut self, block: BlockId);
}

/// Accounting-only backend: remembers payloads in a map.
///
/// Despite the name it does retain the bytes (so `reload` round-trips);
/// "null" refers to it not touching any real device.
#[derive(Debug, Default)]
pub struct NullBackend {
    spilled: BTreeMap<BlockId, Vec<u8>>,
}

impl NullBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of payloads currently spilled.
    pub fn len(&self) -> usize {
        self.spilled.len()
    }

    /// Whether nothing is spilled.
    pub fn is_empty(&self) -> bool {
        self.spilled.is_empty()
    }
}

impl SpillBackend for NullBackend {
    fn spill(&mut self, block: BlockId, payload: &[u8]) -> std::io::Result<()> {
        self.spilled.insert(block, payload.to_vec());
        Ok(())
    }

    fn reload(&mut self, block: BlockId) -> std::io::Result<Vec<u8>> {
        self.spilled.get(&block).cloned().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("block {block} was never spilled"),
            )
        })
    }

    fn discard(&mut self, block: BlockId) {
        self.spilled.remove(&block);
    }
}

/// Backend that spills blocks as files under a directory.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
}

impl FileBackend {
    /// Creates the backend, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn path_of(&self, block: BlockId) -> PathBuf {
        self.dir.join(format!("block-{}.spill", block.index()))
    }
}

impl SpillBackend for FileBackend {
    fn spill(&mut self, block: BlockId, payload: &[u8]) -> std::io::Result<()> {
        let mut f = fs::File::create(self.path_of(block))?;
        f.write_all(payload)
    }

    fn reload(&mut self, block: BlockId) -> std::io::Result<Vec<u8>> {
        let mut f = fs::File::open(self.path_of(block))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn discard(&mut self, block: BlockId) {
        let _ = fs::remove_file(self.path_of(block));
    }
}

/// A job's input-data block store.
///
/// Payload storage is optional: the simulator builds stores with
/// metadata only ([`BlockStore::with_metadata`]), while the PS runtime
/// registers real payloads.
///
/// # Examples
///
/// ```
/// use harmony_mem::{BlockStore, NullBackend};
///
/// // 10 blocks of 1 MiB.
/// let mut store = BlockStore::with_metadata(10, 1 << 20, NullBackend::new());
/// store.set_target_alpha(0.3);
/// let moved = store.rebalance().unwrap();
/// assert_eq!(moved, 3);
/// assert_eq!(store.alpha(), 0.3);
/// ```
pub struct BlockStore<B> {
    blocks: Vec<Block>,
    payloads: BTreeMap<BlockId, Vec<u8>>,
    backend: B,
    target_alpha: f64,
}

impl<B: SpillBackend> BlockStore<B> {
    /// Creates a store of `count` equally sized metadata-only blocks.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn with_metadata(count: usize, block_bytes: u64, backend: B) -> Self {
        assert!(count > 0, "a block store needs at least one block");
        let blocks = (0..count)
            .map(|i| Block::new(BlockId::new(i as u64), block_bytes))
            .collect();
        Self {
            blocks,
            payloads: BTreeMap::new(),
            backend,
            target_alpha: 0.0,
        }
    }

    /// Creates a store from real payloads (one block per payload).
    ///
    /// # Panics
    ///
    /// Panics if `payloads` is empty.
    pub fn with_payloads(payloads: Vec<Vec<u8>>, backend: B) -> Self {
        assert!(
            !payloads.is_empty(),
            "a block store needs at least one block"
        );
        let blocks = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| Block::new(BlockId::new(i as u64), p.len() as u64))
            .collect();
        let payloads = payloads
            .into_iter()
            .enumerate()
            .map(|(i, p)| (BlockId::new(i as u64), p))
            .collect();
        Self {
            blocks,
            payloads,
            backend,
            target_alpha: 0.0,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store has no blocks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total bytes across all blocks.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.iter().map(Block::bytes).sum()
    }

    /// Bytes currently resident in memory.
    pub fn memory_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.in_memory())
            .map(Block::bytes)
            .sum()
    }

    /// Bytes currently on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.total_bytes() - self.memory_bytes()
    }

    /// The realized disk ratio `α = B_disk / B_total` (by block count,
    /// matching the paper's definition).
    pub fn alpha(&self) -> f64 {
        let disk = self.blocks.iter().filter(|b| !b.in_memory()).count();
        disk as f64 / self.blocks.len() as f64
    }

    /// Sets the target disk ratio; takes effect on the next
    /// [`BlockStore::rebalance`].
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn set_target_alpha(&mut self, alpha: f64) {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        self.target_alpha = alpha;
    }

    /// The target disk ratio.
    pub fn target_alpha(&self) -> f64 {
        self.target_alpha
    }

    /// Moves blocks between memory and disk until the realized block
    /// ratio matches the target (rounded down to whole blocks). Returns
    /// the number of blocks moved.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors; the store stays consistent (blocks
    /// that failed to move keep their previous residency).
    pub fn rebalance(&mut self) -> std::io::Result<usize> {
        let want_disk = (self.target_alpha * self.blocks.len() as f64).floor() as usize;
        let have_disk = self.blocks.iter().filter(|b| !b.in_memory()).count();
        let mut moved = 0;
        if have_disk < want_disk {
            // Spill memory-side blocks from the back (arbitrary but
            // deterministic order).
            let ids: Vec<BlockId> = self
                .blocks
                .iter()
                .rev()
                .filter(|b| b.in_memory())
                .take(want_disk - have_disk)
                .map(Block::id)
                .collect();
            for id in ids {
                self.spill_block(id)?;
                moved += 1;
            }
        } else if have_disk > want_disk {
            let ids: Vec<BlockId> = self
                .blocks
                .iter()
                .filter(|b| !b.in_memory())
                .take(have_disk - want_disk)
                .map(Block::id)
                .collect();
            for id in ids {
                self.reload_block(id)?;
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Spills one block to disk.
    ///
    /// # Errors
    ///
    /// Returns backend I/O errors. Spilling an already-disk block is a
    /// no-op.
    pub fn spill_block(&mut self, id: BlockId) -> std::io::Result<()> {
        let idx = self.index_of(id)?;
        if !self.blocks[idx].in_memory() {
            return Ok(());
        }
        let payload = self.payloads.remove(&id).unwrap_or_default();
        self.backend.spill(id, &payload)?;
        self.blocks[idx].set_residency(Residency::Disk);
        Ok(())
    }

    /// Reloads one block into memory.
    ///
    /// # Errors
    ///
    /// Returns backend I/O errors. Reloading a memory block is a no-op.
    pub fn reload_block(&mut self, id: BlockId) -> std::io::Result<()> {
        let idx = self.index_of(id)?;
        if self.blocks[idx].in_memory() {
            return Ok(());
        }
        let payload = self.backend.reload(id)?;
        if !payload.is_empty() {
            self.payloads.insert(id, payload);
        }
        self.backend.discard(id);
        self.blocks[idx].set_residency(Residency::Memory);
        Ok(())
    }

    /// Reads a block's payload, reloading it from disk first if needed.
    /// Returns `None` for metadata-only blocks.
    ///
    /// # Errors
    ///
    /// Returns backend I/O errors from an implied reload.
    pub fn read_block(&mut self, id: BlockId) -> std::io::Result<Option<&[u8]>> {
        self.reload_block(id)?;
        Ok(self.payloads.get(&id).map(Vec::as_slice))
    }

    /// Iterates block metadata.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// IDs of all disk-side blocks (the background preloading worklist).
    pub fn disk_block_ids(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|b| !b.in_memory())
            .map(Block::id)
            .collect()
    }

    fn index_of(&self, id: BlockId) -> std::io::Result<usize> {
        self.blocks
            .iter()
            .position(|b| b.id() == id)
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, format!("unknown block {id}"))
            })
    }
}

impl<B: std::fmt::Debug> std::fmt::Debug for BlockStore<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore")
            .field("blocks", &self.blocks.len())
            .field("alpha", &self.target_alpha)
            .field("backend", &self.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalance_hits_target_alpha() {
        let mut s = BlockStore::with_metadata(10, 100, NullBackend::new());
        s.set_target_alpha(0.5);
        assert_eq!(s.rebalance().unwrap(), 5);
        assert_eq!(s.alpha(), 0.5);
        assert_eq!(s.memory_bytes(), 500);
        assert_eq!(s.disk_bytes(), 500);
        // Lowering alpha reloads.
        s.set_target_alpha(0.2);
        assert_eq!(s.rebalance().unwrap(), 3);
        assert_eq!(s.alpha(), 0.2);
    }

    #[test]
    fn rebalance_is_idempotent() {
        let mut s = BlockStore::with_metadata(8, 1, NullBackend::new());
        s.set_target_alpha(0.25);
        s.rebalance().unwrap();
        assert_eq!(s.rebalance().unwrap(), 0);
    }

    #[test]
    fn payload_roundtrip_through_spill() {
        let payloads = vec![vec![1u8, 2, 3], vec![4u8, 5], vec![6u8]];
        let mut s = BlockStore::with_payloads(payloads, NullBackend::new());
        s.set_target_alpha(1.0);
        s.rebalance().unwrap();
        assert_eq!(s.memory_bytes(), 0);
        let got = s.read_block(BlockId::new(0)).unwrap().unwrap().to_vec();
        assert_eq!(got, vec![1, 2, 3]);
        // Reading promoted the block back to memory.
        assert!(s.iter().next().unwrap().in_memory());
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("harmony-mem-test-{}", std::process::id()));
        let backend = FileBackend::new(&dir).unwrap();
        let mut s = BlockStore::with_payloads(vec![vec![9u8; 128]], backend);
        s.spill_block(BlockId::new(0)).unwrap();
        assert_eq!(s.memory_bytes(), 0);
        let bytes = s.read_block(BlockId::new(0)).unwrap().unwrap();
        assert_eq!(bytes, &[9u8; 128][..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn alpha_definition_is_block_count_based() {
        let mut s = BlockStore::with_metadata(4, 100, NullBackend::new());
        s.spill_block(BlockId::new(0)).unwrap();
        assert_eq!(s.alpha(), 0.25);
    }

    #[test]
    fn unknown_block_is_not_found() {
        let mut s = BlockStore::with_metadata(1, 1, NullBackend::new());
        let err = s.spill_block(BlockId::new(99)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn disk_block_ids_reflect_residency() {
        let mut s = BlockStore::with_metadata(3, 1, NullBackend::new());
        s.spill_block(BlockId::new(1)).unwrap();
        assert_eq!(s.disk_block_ids(), vec![BlockId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_store_rejected() {
        let _ = BlockStore::with_metadata(0, 1, NullBackend::new());
    }
}
