//! Input-data blocks.
//!
//! Harmony "manages data as fine-grained blocks in memory and on disks"
//! (§IV-C). A block is the unit of spill/reload; the per-job disk ratio
//! is `α_j = B_disk_j / B_total_j`.

use std::fmt;

/// Unique identifier of a data block within one job's store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u64);

impl BlockId {
    /// Wraps a raw block number.
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw block number.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Where a block currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Residency {
    /// Resident in worker memory, immediately usable by COMP subtasks.
    Memory,
    /// Spilled to disk; must be reloaded (and deserialized) before use.
    Disk,
}

/// Metadata of one input-data block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    id: BlockId,
    bytes: u64,
    residency: Residency,
}

impl Block {
    /// Creates a memory-resident block of `bytes` bytes.
    pub fn new(id: BlockId, bytes: u64) -> Self {
        Self {
            id,
            bytes,
            residency: Residency::Memory,
        }
    }

    /// The block's identifier.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Current residency.
    pub fn residency(&self) -> Residency {
        self.residency
    }

    /// Whether the block is memory-resident.
    pub fn in_memory(&self) -> bool {
        self.residency == Residency::Memory
    }

    pub(crate) fn set_residency(&mut self, residency: Residency) {
        self.residency = residency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_starts_in_memory() {
        let b = Block::new(BlockId::new(0), 1024);
        assert!(b.in_memory());
        assert_eq!(b.bytes(), 1024);
        assert_eq!(b.id().index(), 0);
    }

    #[test]
    fn residency_flips() {
        let mut b = Block::new(BlockId::new(1), 10);
        b.set_residency(Residency::Disk);
        assert!(!b.in_memory());
        assert_eq!(b.residency(), Residency::Disk);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId::new(7).to_string(), "B7");
    }
}
