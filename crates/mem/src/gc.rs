//! Analytic garbage-collection pressure model.
//!
//! The paper evaluates memory pressure through "GC time during
//! execution" (§V-B) on a JVM runtime: as the resident set approaches
//! the heap capacity, collections become frequent and expensive, slowing
//! every computation down; exceeding capacity kills the job with OOM.
//!
//! We replace the JVM with a calibrated analytic model: computation is
//! stretched by a factor that grows quadratically once memory usage
//! crosses a pressure threshold. This reproduces the behaviour the α
//! controller must react to — the U-shaped iteration-time-vs-α curve of
//! §V-G — without a managed runtime.

/// GC slowdown model.
///
/// Below `threshold` memory-usage ratio there is no penalty; between
/// `threshold` and 1.0 the compute slowdown factor rises quadratically
/// up to `1 + max_overhead`; above 1.0 the machine OOMs.
///
/// # Examples
///
/// ```
/// use harmony_mem::GcModel;
///
/// let gc = GcModel::default();
/// assert_eq!(gc.slowdown(0.5), 1.0);          // no pressure
/// assert!(gc.slowdown(0.95) > 1.5);           // heavy pressure
/// assert!(gc.is_oom(1.01));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcModel {
    threshold: f64,
    max_overhead: f64,
}

impl GcModel {
    /// Creates a model that starts charging GC overhead at the
    /// `threshold` usage ratio and reaches `1 + max_overhead` slowdown
    /// at 100% usage.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1)` or `max_overhead` is
    /// negative.
    pub fn new(threshold: f64, max_overhead: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "GC threshold must be in (0, 1), got {threshold}"
        );
        assert!(
            max_overhead >= 0.0,
            "max GC overhead must be non-negative, got {max_overhead}"
        );
        Self {
            threshold,
            max_overhead,
        }
    }

    /// Usage ratio at which GC overhead starts.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Compute-slowdown multiplier (≥ 1) for a memory-usage ratio.
    ///
    /// `usage_ratio` is resident bytes divided by capacity. Ratios above
    /// 1.0 are clamped for the slowdown curve — callers should check
    /// [`GcModel::is_oom`] first.
    pub fn slowdown(&self, usage_ratio: f64) -> f64 {
        let r = usage_ratio.clamp(0.0, 1.0);
        if r <= self.threshold {
            return 1.0;
        }
        let x = (r - self.threshold) / (1.0 - self.threshold);
        1.0 + self.max_overhead * x * x
    }

    /// Extra (GC) seconds charged on top of `compute_seconds` at the
    /// given usage ratio.
    pub fn gc_seconds(&self, compute_seconds: f64, usage_ratio: f64) -> f64 {
        compute_seconds * (self.slowdown(usage_ratio) - 1.0)
    }

    /// Whether this usage ratio means out-of-memory.
    pub fn is_oom(&self, usage_ratio: f64) -> bool {
        usage_ratio > 1.0
    }
}

impl Default for GcModel {
    /// Threshold 0.7, max overhead 3× — calibrated so that a machine at
    /// ~95% memory spends roughly as much time in GC as in compute,
    /// matching the "GC explodes" regime of §V-G.
    fn default() -> Self {
        Self::new(0.7, 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_penalty_below_threshold() {
        let gc = GcModel::new(0.6, 2.0);
        for r in [0.0, 0.3, 0.6] {
            assert_eq!(gc.slowdown(r), 1.0);
        }
    }

    #[test]
    fn slowdown_is_monotone_above_threshold() {
        let gc = GcModel::default();
        let mut prev = 1.0;
        for i in 0..=20 {
            let r = 0.7 + 0.3 * i as f64 / 20.0;
            let s = gc.slowdown(r);
            assert!(s >= prev);
            prev = s;
        }
        assert!((gc.slowdown(1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_shape() {
        let gc = GcModel::new(0.5, 4.0);
        // Halfway through the pressure band: 1 + 4 * 0.25 = 2.
        assert!((gc.slowdown(0.75) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gc_seconds_scale_with_compute() {
        let gc = GcModel::new(0.5, 1.0);
        let extra = gc.gc_seconds(10.0, 1.0);
        assert!((extra - 10.0).abs() < 1e-12);
        assert_eq!(gc.gc_seconds(10.0, 0.2), 0.0);
    }

    #[test]
    fn oom_only_above_capacity() {
        let gc = GcModel::default();
        assert!(!gc.is_oom(1.0));
        assert!(gc.is_oom(1.0001));
    }

    #[test]
    #[should_panic(expected = "GC threshold")]
    fn rejects_bad_threshold() {
        let _ = GcModel::new(1.5, 1.0);
    }
}
